"""Session facade: isolation, uniform Decisions, shim compatibility.

The load-bearing properties of the API redesign:

* **Isolation** -- two live sessions with different backends produce
  bit-identical verdicts with *zero* cache bleed (asserted via the
  scopes' hit/miss counters);
* **Uniformity** -- every decision/evaluation entry point is reachable
  as a ``Session`` method returning a ``Decision`` (verdict + stats +
  timings + config fingerprint);
* **Compatibility** -- the legacy free functions keep their exact
  signatures and return types while delegating to the ambient session,
  and the ambient defaults (``set_default_kernel``) are per-context
  rather than process-global mutable state.
"""

import inspect
import json
import pickle
import threading

import pytest

from repro import (
    CachePolicy,
    Decision,
    KernelConfig,
    Session,
    current_session,
    default_session,
    parse_program,
    use_session,
)
from repro.automata.kernel import default_kernel, set_default_kernel
from repro.context import GLOBAL_SCOPE
from repro.core import (
    ContainmentResult,
    EquivalenceResult,
    BoundednessResult,
    contained_in_ucq,
    decide_boundedness,
    is_equivalent_to_nonrecursive,
)
from repro.datalog.engine import Engine, EngineConfig, default_engine
from repro.datalog.errors import ValidationError
from repro.datalog.unfold import expansion_union
from repro.programs import transitive_closure
from repro.programs.library import buys_bounded, buys_bounded_rewriting
from repro.session import rows_checksum
from repro import __main__ as cli


TC = transitive_closure()


def _tc_union(depth=2):
    return expansion_union(TC, "p", depth)


# ----------------------------------------------------------------------
# Isolation.
# ----------------------------------------------------------------------

def test_sessions_with_different_kernels_agree_without_cache_bleed():
    bitset = Session(kernel=KernelConfig(backend="bitset"), name="s-bitset")
    frozen = Session(kernel=KernelConfig(backend="frozenset"), name="s-frozen")
    union = _tc_union()

    first = bitset.contains(TC, "p", union)
    second = frozen.contains(TC, "p", union)

    # Bit-identical verdicts AND search stats across backends.
    assert first.verdict == second.verdict == {"contained": False}
    assert first.stats == second.stats

    # Each session built its own automata (misses in its own scope)...
    for session in (bitset, frozen):
        scope = session.cache_stats()["scope"]
        assert scope["core.ptree_automaton"]["misses"] == 1
        assert scope["core.cq_automaton"]["misses"] == len(union)
    # ... and neither borrowed from the other: zero hits anywhere.
    for session in (bitset, frozen):
        for counters in session.cache_stats()["scope"].values():
            assert counters["hits"] == 0


def test_session_work_does_not_touch_global_scope():
    before = GLOBAL_SCOPE.stats()
    session = Session(name="s-private")
    session.contains(TC, "p", _tc_union())
    assert GLOBAL_SCOPE.stats() == before
    assert session.caches.total_entries() > 0


def test_sessions_with_different_engines_agree_on_evaluation():
    from repro.workloads import generators as gen

    db = gen.edges_database(gen.chain_edges(30), ("e", "e0"))
    columnar = Session(engine=EngineConfig(backend="columnar"))
    interpretive = Session(engine=EngineConfig(compiled=False))
    a = columnar.evaluate(TC, db, goal="p")
    b = interpretive.evaluate(TC, db, goal="p")
    assert a.verdict == b.verdict
    assert a.checksum == b.checksum
    assert a.fingerprint != b.fingerprint  # different configs...
    assert a.checksum == rows_checksum(a.raw.facts("p"))  # ...same rows


def test_warm_then_run_hits_session_scope():
    session = Session(name="s-warm")
    union = _tc_union()
    session.warm(TC, "p", union)
    misses_after_warm = {
        table: counters["misses"]
        for table, counters in session.cache_stats()["scope"].items()
    }
    session.contains(TC, "p", union)
    scope = session.cache_stats()["scope"]
    # The decision re-used every warmed automaton: no new misses.
    for table in ("core.ptree_automaton", "core.cq_automaton",
                  "core.enumerator"):
        assert scope[table]["misses"] == misses_after_warm[table]
        assert scope[table]["hits"] > 0


def test_clear_caches_resets_scope_and_plans():
    from repro.workloads import generators as gen

    session = Session(name="s-clear")
    db = gen.edges_database(gen.chain_edges(5), ("e", "e0"))
    session.evaluate(TC, db)
    session.contains(TC, "p", _tc_union())
    assert session.caches.total_entries() > 0
    assert session.cache_stats()["plans"] > 0
    session.clear_caches()
    assert session.caches.total_entries() == 0
    assert session.cache_stats()["plans"] == 0


def test_cache_policy_shared_uses_global_scope():
    session = Session(cache="shared")
    assert session.caches is GLOBAL_SCOPE
    assert default_session().caches is GLOBAL_SCOPE
    with pytest.raises(ValidationError):
        CachePolicy(scope="borrowed")


# ----------------------------------------------------------------------
# Ambient resolution (the ContextVar).
# ----------------------------------------------------------------------

def test_activation_makes_session_ambient():
    session = Session(kernel=KernelConfig(backend="frozenset"),
                      name="s-ambient")
    # Outside any activation the ambient session is the default one
    # (or a set_default_kernel-derived twin sharing its caches).
    assert current_session().caches is default_session().caches
    ambient_before = current_session()
    with use_session(session):
        assert current_session() is session
        assert default_kernel().backend == "frozenset"
        assert default_engine() is session.engine
    assert current_session() is ambient_before
    assert default_kernel().backend == "bitset"


def test_free_functions_run_inside_ambient_session():
    session = Session(name="s-freefn")
    with session:
        result = contained_in_ucq(TC, "p", _tc_union())
    assert isinstance(result, ContainmentResult)
    # The work landed in the session's scope, not the global one.
    assert session.caches.total_entries() > 0


def test_set_default_kernel_is_per_thread():
    """Two threads flip the default kernel concurrently; each observes
    only its own setting (the historical module-global raced here)."""
    barrier = threading.Barrier(2, timeout=10)
    seen = {}

    def worker(label, backend):
        set_default_kernel(KernelConfig(backend=backend))
        barrier.wait()  # both threads have set their default
        seen[label] = default_kernel().backend
        barrier.wait()  # hold until both have read

    threads = [
        threading.Thread(target=worker, args=("a", "bitset")),
        threading.Thread(target=worker, args=("b", "frozenset")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {"a": "bitset", "b": "frozenset"}
    # The main thread's default never moved.
    assert default_kernel().backend == "bitset"


def test_set_default_kernel_round_trips_in_context():
    previous = set_default_kernel(KernelConfig(backend="frozenset"))
    try:
        assert default_kernel().backend == "frozenset"
        # Free functions pick the ambient default up.
        result = contained_in_ucq(TC, "p", _tc_union(1))
        assert result.contained is False
    finally:
        set_default_kernel(previous)
    assert default_kernel().backend == previous.backend


# ----------------------------------------------------------------------
# The uniform Decision.
# ----------------------------------------------------------------------

def test_every_entry_point_returns_a_decision():
    from repro.programs import plain_transitive_closure
    from repro.workloads import generators as gen

    session = Session(name="s-surface")
    union = _tc_union()
    star = gen.edges_database(gen.star_edges(3, 4), ("e",))
    chain = gen.edges_database(gen.chain_edges(6), ("e", "e0"))
    theta = list(union)[0]
    nonrec = buys_bounded_rewriting()
    calls = [
        session.contains(TC, "p", union),
        session.contains_cq(TC, "p", theta),
        session.contains_nonrecursive(buys_bounded(), "buys", nonrec),
        session.cq_contained(theta, TC, "p"),
        session.ucq_contained(union, TC, "p"),
        session.nonrecursive_contained(nonrec, "buys", buys_bounded(), "buys"),
        session.equivalent_to_nonrecursive(buys_bounded(), nonrec, "buys"),
        session.equivalent_to_ucq(TC, "p", union),
        session.bounded(buys_bounded(), "buys", max_depth=3),
        session.evaluate(TC, chain, goal="p"),
        session.query(TC, chain, "p"),
        session.magic(plain_transitive_closure(), star, "p", "bf",
                      ("r0_0",)),
        session.run_scenario("bounded_buys"),
    ]
    for decision in calls:
        assert isinstance(decision, Decision)
        assert decision.fingerprint == session.fingerprint
        assert isinstance(decision.verdict, dict)
        assert decision.timings


def test_decision_record_and_mapping_compat():
    session = Session(name="s-record")
    decision = session.run_scenario("bounded_buys")
    assert decision.ok is True
    assert decision["ok"] is True
    assert decision["verdict"] == {"bounded": True, "depth": 2}
    assert decision["stats"] == decision.stats
    assert "fingerprint" in decision
    json.dumps(decision.record())  # trajectory-serializable
    assert bool(decision)


def test_decision_truthiness_follows_kind():
    session = Session(name="s-truth")
    assert bool(session.contains(TC, "p", _tc_union())) is False
    assert bool(session.bounded(buys_bounded(), "buys", max_depth=3))
    failing = session.run_scenario("contain_tc_trunc2")
    assert failing.ok is True  # ground truth says non-containment
    assert bool(failing) is False  # but the verdict itself is negative


def test_one_session_entered_from_two_threads():
    """``with session:`` from two threads concurrently: each thread's
    exit must pop its *own* context's token (a shared token stack on
    the instance crashed here with 'Token created in a different
    Context')."""
    session = Session(name="s-two-threads")
    barrier = threading.Barrier(2, timeout=10)
    errors = []

    def worker():
        try:
            with session:
                barrier.wait()  # both threads are inside the block
                assert current_session() is session
            assert current_session() is not session
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_counterexample_rejects_witnessless_decisions():
    from repro.core import counterexample_database

    session = Session(name="s-no-witness")
    stripped = session.contains(TC, "p", _tc_union()).without_payload()
    with pytest.raises(ValidationError, match="no witness payload"):
        counterexample_database(stripped, TC)
    boolean = session.cq_contained(list(_tc_union())[0], TC, "p")
    with pytest.raises(ValidationError, match="no proof-tree witness"):
        counterexample_database(boolean, TC)


def test_decision_pickles_without_payload():
    session = Session(name="s-pickle")
    decision = session.contains(TC, "p", _tc_union()).without_payload()
    clone = pickle.loads(pickle.dumps(decision))
    assert clone.verdict == decision.verdict
    assert clone.certificate is None and clone.raw is None


def test_containment_certificate_converts_to_counterexample():
    from repro.core import counterexample_database
    from repro.datalog.engine import evaluate

    session = Session(name="s-cert")
    decision = session.contains(TC, "p", _tc_union())
    assert decision.certificate is not None
    database, row = counterexample_database(decision, TC)
    assert row in evaluate(TC, database).facts("p")


def test_fingerprint_stable_and_config_sensitive():
    a = Session(kernel=KernelConfig(backend="bitset"))
    b = Session(kernel=KernelConfig(backend="bitset"))
    c = Session(kernel=KernelConfig(backend="frozenset"))
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint
    assert a.config["kernel"]["backend"] == "bitset"


# ----------------------------------------------------------------------
# Shim compatibility: the legacy free functions.
# ----------------------------------------------------------------------

def test_legacy_signatures_are_pinned():
    expected = {
        contained_in_ucq: ["program", "goal", "union", "method",
                           "use_antichain", "kernel"],
        is_equivalent_to_nonrecursive: ["program", "nonrecursive", "goal",
                                        "nonrecursive_goal", "method",
                                        "engine", "kernel"],
        decide_boundedness: ["program", "goal", "max_depth", "method",
                             "engine", "kernel"],
    }
    for function, parameters in expected.items():
        assert list(inspect.signature(function).parameters) == parameters


def test_legacy_return_types_preserved():
    assert isinstance(contained_in_ucq(TC, "p", _tc_union()),
                      ContainmentResult)
    assert isinstance(
        is_equivalent_to_nonrecursive(buys_bounded(),
                                      buys_bounded_rewriting(), "buys"),
        EquivalenceResult)
    assert isinstance(decide_boundedness(buys_bounded(), "buys", max_depth=3),
                      BoundednessResult)


def test_shims_and_session_agree():
    session = Session(name="s-agree")
    union = _tc_union()
    shim = contained_in_ucq(TC, "p", union)
    direct = session.contains(TC, "p", union)
    assert shim.contained == direct.verdict["contained"]
    assert shim.stats == direct.stats


def test_clear_and_warm_shims_target_ambient_session():
    from repro.core import clear_shared_caches, warm_shared_caches

    session = Session(name="s-lifecycle")
    with session:
        warm_shared_caches(TC, "p", _tc_union())
        assert session.caches.total_entries() > 0
        clear_shared_caches()
        assert session.caches.total_entries() == 0


# ----------------------------------------------------------------------
# The unified CLI.
# ----------------------------------------------------------------------

QUICKSTART_RECURSIVE = ("buys(X, Y) :- likes(X, Y). "
                        "buys(X, Y) :- trendy(X), buys(Z, Y).")
QUICKSTART_NONRECURSIVE = ("buys(X, Y) :- likes(X, Y). "
                           "buys(X, Y) :- trendy(X), likes(Z, Y).")


def test_cli_decide_reproduces_quickstart(capsys):
    code = cli.main(["decide", "equivalence",
                     "--program", QUICKSTART_RECURSIVE,
                     "--nonrecursive", QUICKSTART_NONRECURSIVE,
                     "--goal", "buys", "--expect", "true"])
    out = capsys.readouterr().out
    assert code == 0
    assert '"equivalent": true' in out


def test_cli_decide_containment_truncation(capsys):
    code = cli.main(["decide", "containment",
                     "--program", "p(X, Y) :- e(X, Z), p(Z, Y). "
                                  "p(X, Y) :- e0(X, Y).",
                     "--goal", "p", "--union-depth", "2",
                     "--expect", "false", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    record = json.loads(out)
    assert record["verdict"] == {"contained": False}
    assert record["fingerprint"]


def test_cli_decide_expect_mismatch_fails(capsys):
    code = cli.main(["decide", "boundedness",
                     "--program", QUICKSTART_RECURSIVE,
                     "--goal", "buys", "--expect", "false"])
    capsys.readouterr()
    assert code == 1  # Pi_1 is bounded; expecting false must fail


def test_cli_eval_lists_rows(capsys):
    code = cli.main(["eval",
                     "--program", "p(X, Y) :- e(X, Z), p(Z, Y). "
                                  "p(X, Y) :- e(X, Y).",
                     "--db", "e(a, b). e(b, c).", "--goal", "p"])
    out = capsys.readouterr().out
    assert code == 0
    assert "p(a, c)" in out and '"count": 3' in out


def test_cli_scenarios_alias(capsys):
    code = cli.main(["scenarios", "--scenarios", "bounded_buys",
                     "--workers", "1", "--no-write"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bounded_buys" in out and "FAIL" not in out


def test_cli_usage_errors(capsys):
    assert cli.main(["decide", "equivalence", "--program",
                     QUICKSTART_RECURSIVE, "--goal", "buys"]) == 2
    assert cli.main(["decide", "containment", "--program",
                     QUICKSTART_RECURSIVE, "--goal", "buys"]) == 2
    capsys.readouterr()
