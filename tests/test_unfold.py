"""Unfolding tests: nonrecursive -> UCQ, bounded expansions,
Proposition 2.6, and the Section 6 blowup examples."""

import random

import pytest

from repro.cq.canonical import evaluate_cq, evaluate_ucq
from repro.datalog.engine import query
from repro.datalog.errors import NotNonrecursiveError
from repro.datalog.parser import parse_program
from repro.datalog.unfold import (
    count_expansions,
    expansion_union,
    expansions,
    unfold_nonrecursive,
)
from repro.programs import dist, dist_le, equal, transitive_closure, word

from .conftest import random_graph_database


class TestUnfoldNonrecursive:
    def test_dist_single_exponential_disjunct(self):
        # Example 6.1: dist_n unfolds to ONE conjunctive query with 2^n
        # body atoms.
        for n in (1, 2, 3, 4):
            union = unfold_nonrecursive(dist(n), f"dist{n}")
            assert len(union) == 1
            assert len(union.disjuncts[0].body) == 2 ** n

    def test_word_exponentially_many_small_disjuncts(self):
        # Example 6.6: word_n unfolds to 2^n disjuncts of size O(n).
        for n in (1, 2, 3, 4):
            union = unfold_nonrecursive(word(n), f"word{n}")
            assert len(union) == 2 ** n
            assert all(len(q.body) <= 2 * n for q in union)

    def test_dist_le_handles_empty_body_rules(self):
        union = unfold_nonrecursive(dist_le(1), "dist1")
        # Paths of length 0, 1, 2 (deduplicated).
        lengths = sorted(len(q.body) for q in union)
        assert lengths[0] == 0 and lengths[-1] == 2

    def test_semantics_match_engine(self):
        rng = random.Random(11)
        for n in (1, 2):
            program = dist_le(n)
            union = unfold_nonrecursive(program, f"dist{n}")
            for _ in range(5):
                db = random_graph_database(rng, nodes=5)
                assert evaluate_ucq(union, db) == query(program, db, f"dist{n}")

    def test_equal_semantics(self):
        # equal_1(x,y,u,v): paths of length 2 with matching labels.
        program = equal(1)
        union = unfold_nonrecursive(program, "equal1")
        from repro.datalog.database import Database

        db = Database.from_facts(
            [
                ("e", ("a", "b")), ("e", ("b", "c")),
                ("e", ("p", "q")), ("e", ("q", "r")),
                ("zero", ("a",)), ("zero", ("p",)),
                ("one", ("b",)), ("one", ("q",)),
            ]
        )
        rows = {tuple(c.value for c in row) for row in evaluate_ucq(union, db)}
        assert ("a", "c", "p", "r") in rows
        assert ("a", "c", "a", "c") in rows
        engine_rows = query(program, db, "equal1")
        assert evaluate_ucq(union, db) == engine_rows

    def test_rejects_recursive_program(self):
        with pytest.raises(NotNonrecursiveError):
            unfold_nonrecursive(transitive_closure(), "p")

    def test_dedupe_removes_renamed_duplicates(self):
        program = parse_program(
            """
            q(X) :- e(X, Y).
            q(X) :- e(X, Z).
            """
        )
        assert len(unfold_nonrecursive(program, "q")) == 1

    def test_constant_unification(self):
        program = parse_program(
            """
            q(X) :- mid(X, a).
            mid(X, Y) :- e(X, Y).
            """
        )
        union = unfold_nonrecursive(program, "q")
        assert len(union) == 1
        assert "e(X0, a)" in str(union.disjuncts[0])


class TestExpansions:
    def test_tc_expansion_counts(self, tc_program):
        # Heights 1..k: paths e^(h-1) e0, so one expansion per height.
        assert count_expansions(tc_program, "p", 1) == 1
        assert count_expansions(tc_program, "p", 2) == 2
        assert count_expansions(tc_program, "p", 5) == 5

    def test_expansion_shapes(self, tc_program):
        for q in expansions(tc_program, "p", 3):
            predicates = [a.predicate for a in q.body]
            assert predicates[-1] == "e0"
            assert all(p == "e" for p in predicates[:-1])

    def test_exact_height(self, tc_program):
        exact = list(expansions(tc_program, "p", 3, exact_height=True))
        assert len(exact) == 1
        assert len(exact[0].body) == 3

    def test_proposition_2_6_bounded(self, tc_program):
        # Q_Pi(D) restricted to stage k equals the union of expansions
        # of height <= k, and the full fixpoint is reached for chains.
        rng = random.Random(5)
        for _ in range(5):
            db = random_graph_database(rng, nodes=4, edge_pred="e")
            # add a base relation
            for a, b in list(db.relation("e"))[:2]:
                db.add("e0", (a, b))
            full = query(tc_program, db, "p")
            union = expansion_union(tc_program, "p", 6)
            assert evaluate_ucq(union, db) == full  # 6 >= longest path here

    def test_nonlinear_expansions_branch(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, Z), p(Z, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        # height 2: e, e·e ; height 3 adds 3 bracketings of e^3 and e^4
        assert count_expansions(program, "p", 1) == 1
        assert count_expansions(program, "p", 2) == 2
        assert count_expansions(program, "p", 3) == 1 + 1 + 2 + 1  # e, e2, 2x e3, e4
