"""Wall-clock budgets (:mod:`repro.budget`): the SIGALRM context
manager behind the ``tag:stress`` tier's deterministic
``{"budget_exhausted": True}`` verdicts."""

import gc
import signal
import time

import pytest

from repro.budget import BudgetExhausted, budgets_enforceable, time_budget
from repro.session import Session
from repro.workloads.scenarios import get_scenario


def test_no_budget_is_a_no_op():
    with time_budget(None):
        pass
    with time_budget(0):
        pass
    with time_budget(-1.0):
        pass


def test_budget_fires_on_overrun():
    if not budgets_enforceable():
        pytest.skip("SIGALRM budgets need the main thread + setitimer")
    with pytest.raises(BudgetExhausted) as info:
        with time_budget(0.05):
            while True:
                time.sleep(0.01)
    assert info.value.seconds == 0.05


def test_budget_does_not_fire_under_the_limit():
    with time_budget(5.0):
        total = sum(range(1000))
    assert total == 499500
    # The timer is disarmed afterwards: nothing fires later.
    assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


def test_nested_budgets_restore_the_outer_timer():
    if not budgets_enforceable():
        pytest.skip("SIGALRM budgets need the main thread + setitimer")
    with time_budget(30.0):
        with time_budget(0.05):
            with pytest.raises(BudgetExhausted):
                with time_budget(10.0):
                    # The tightest enclosing budget wins even under a
                    # looser inner one.
                    while True:
                        time.sleep(0.01)
        remaining = signal.getitimer(signal.ITIMER_REAL)[0]
        assert 0.0 < remaining <= 30.0  # the outer timer is back
    assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
def test_budget_survives_a_raise_swallowed_by_a_gc_callback():
    """Exceptions escaping a ``gc.callbacks`` hook are discarded by the
    interpreter (``sys.unraisablehook``), so an expiry that happens to
    be processed inside one is lost.  Observed in the wild via
    Hypothesis' ``gc_cumulative_time`` hook: the one-shot alarm was
    spent and a 1.5s-budgeted scenario ran forever.  The repeat
    interval must re-fire until a raise lands outside the callback."""
    if not budgets_enforceable():
        pytest.skip("SIGALRM budgets need the main thread + setitimer")

    state = {"armed": True}

    def swallowing_callback(phase, info):
        # Busy-wait past the budget so the expiry raise is processed
        # inside this frame -- and therefore swallowed.
        if phase == "start" and state["armed"]:
            state["armed"] = False
            deadline = time.monotonic() + 0.4
            while time.monotonic() < deadline:
                pass

    gc.callbacks.append(swallowing_callback)
    started = time.monotonic()
    try:
        with pytest.raises(BudgetExhausted):
            with time_budget(0.2):
                gc.collect()  # the 0.2s expiry raises in the callback
                while True:
                    time.sleep(0.01)  # an interval tick must rescue us
    finally:
        gc.callbacks.remove(swallowing_callback)
    assert time.monotonic() - started < 2.0


def test_budgeted_scenario_reports_exhaustion_as_its_verdict():
    if not budgets_enforceable():
        pytest.skip("SIGALRM budgets need the main thread + setitimer")
    scenario = get_scenario("stress_space_containment_n1")
    assert scenario.budget_s is not None
    session = Session(cache="private", name="budget-test")
    result = session.run_scenario(scenario)
    assert result["verdict"] == {"budget_exhausted": True}
    assert result["ok"] is True  # exhaustion IS the expected verdict
