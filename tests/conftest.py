"""Shared fixtures and generators for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program


@pytest.fixture
def tc_program():
    """Example 2.5: transitive closure with distinct base relation."""
    return parse_program(
        """
        p(X, Y) :- e(X, Z), p(Z, Y).
        p(X, Y) :- e0(X, Y).
        """
    )


@pytest.fixture
def buys1():
    """Example 1.1 Pi_1 (bounded)."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), buys(Z, Y).
        """
    )


@pytest.fixture
def buys1_nr():
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), likes(Z, Y).
        """
    )


@pytest.fixture
def buys2():
    """Example 1.1 Pi_2 (inherently recursive)."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- knows(X, Z), buys(Z, Y).
        """
    )


@pytest.fixture
def buys2_nr():
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- knows(X, Z), likes(Z, Y).
        """
    )


def random_database(rng: random.Random, predicates, constants=("a", "b", "c"),
                    max_facts: int = 6) -> Database:
    """A small random database over the given (name, arity) pairs."""
    db = Database()
    for predicate, arity in predicates:
        for _ in range(rng.randint(0, max_facts)):
            db.add(predicate, tuple(rng.choice(constants) for _ in range(arity)))
    return db


def random_graph_database(rng: random.Random, nodes: int = 5,
                          edge_prob: float = 0.4,
                          edge_pred: str = "e") -> Database:
    """A random directed graph as a database."""
    db = Database()
    names = [f"n{i}" for i in range(nodes)]
    for a in names:
        for b in names:
            if rng.random() < edge_prob:
                db.add(edge_pred, (a, b))
    if len(db) == 0:
        db.add(edge_pred, (names[0], names[min(1, nodes - 1)]))
    return db
