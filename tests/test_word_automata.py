"""Word-automata substrate tests (Propositions 4.1-4.3)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.word import (
    NFA,
    contained_in,
    contained_in_union,
    contained_in_via_complement,
    enumerate_words,
    equivalent,
    find_counterexample_word,
)


def ends_ab() -> NFA:
    return NFA.build(
        "ab", ["q0", "q1", "q2"], ["q0"], ["q2"],
        [("q0", "a", "q0"), ("q0", "b", "q0"), ("q0", "a", "q1"), ("q1", "b", "q2")],
    )


def contains_ab() -> NFA:
    return NFA.build(
        "ab", ["p0", "p1", "p2"], ["p0"], ["p2"],
        [
            ("p0", "a", "p0"), ("p0", "b", "p0"), ("p0", "a", "p1"),
            ("p1", "b", "p2"), ("p2", "a", "p2"), ("p2", "b", "p2"),
        ],
    )


def all_words() -> NFA:
    return NFA.build("ab", ["s"], ["s"], ["s"], [("s", "a", "s"), ("s", "b", "s")])


def random_nfa(rng: random.Random, states: int = 3) -> NFA:
    names = [f"s{i}" for i in range(states)]
    transitions = []
    for source in names:
        for symbol in "ab":
            for target in names:
                if rng.random() < 0.35:
                    transitions.append((source, symbol, target))
    return NFA.build(
        "ab",
        names,
        [rng.choice(names)],
        [n for n in names if rng.random() < 0.5] or [names[-1]],
        transitions,
    )


class TestAcceptance:
    def test_accepts(self):
        automaton = ends_ab()
        assert automaton.accepts("ab")
        assert automaton.accepts("bbab")
        assert not automaton.accepts("aba")
        assert not automaton.accepts("")

    def test_enumerate_words(self):
        words = enumerate_words(ends_ab(), 3)
        assert ("a", "b") in words
        assert all(w[-2:] == ("a", "b") for w in words)


class TestEmptiness:
    def test_nonempty(self):
        assert not ends_ab().is_empty()
        assert ends_ab().find_word() == ["a", "b"]

    def test_empty_when_accepting_unreachable(self):
        automaton = NFA.build("a", ["q0", "q1"], ["q0"], ["q1"], [])
        assert automaton.is_empty()
        assert automaton.find_word() is None

    def test_empty_word_accepted(self):
        automaton = NFA.build("a", ["q0"], ["q0"], ["q0"], [])
        assert automaton.find_word() == []


class TestBooleanOperations:
    def test_union_language(self):
        u = ends_ab().union(contains_ab())
        for word in ["ab", "aba", "abbb"]:
            assert u.accepts(word)
        assert not u.accepts("ba")

    def test_intersection_language(self):
        inter = ends_ab().intersection(contains_ab())
        # ends-with-ab implies contains-ab, so intersection == ends_ab.
        assert equivalent(inter, ends_ab())

    def test_complement_partitions(self):
        automaton = ends_ab()
        comp = automaton.complement()
        words = [
            tuple(w) for k in range(5) for w in itertools.product("ab", repeat=k)
        ]
        for word in words:
            assert automaton.accepts(word) != comp.accepts(word)

    def test_determinize_preserves_language(self):
        automaton = contains_ab()
        det = automaton.determinize()
        for k in range(5):
            for word in itertools.product("ab", repeat=k):
                assert automaton.accepts(word) == det.accepts(word)

    def test_determinize_is_deterministic(self):
        det = contains_ab().determinize()
        for state in det.states:
            for symbol in det.alphabet:
                assert len(det.successors(state, symbol)) == 1


class TestContainment:
    def test_known_containment(self):
        assert contained_in(ends_ab(), contains_ab())
        assert not contained_in(contains_ab(), ends_ab())

    def test_everything_contains(self):
        assert contained_in(ends_ab(), all_words())
        assert not contained_in(all_words(), ends_ab())

    def test_counterexample_is_genuine(self):
        word = find_counterexample_word(contains_ab(), ends_ab())
        assert word is not None
        assert contains_ab().accepts(word)
        assert not ends_ab().accepts(word)

    def test_union_containment(self):
        assert contained_in_union(all_words(), [ends_ab(), ends_ab().complement()])

    def test_agrees_with_complement_method(self):
        rng = random.Random(17)
        for _ in range(40):
            left, right = random_nfa(rng), random_nfa(rng)
            assert contained_in(left, right) == contained_in_via_complement(left, right)

    def test_antichain_agrees_with_word_enumeration(self):
        rng = random.Random(23)
        for _ in range(30):
            left, right = random_nfa(rng), random_nfa(rng)
            verdict = contained_in(left, right)
            sampled = enumerate_words(left, 5, limit=200)
            holds_on_sample = all(right.accepts(w) for w in sampled)
            if verdict:
                assert holds_on_sample
            # (a False verdict may be witnessed beyond the sample bound)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 20))
    def test_containment_reflexive_property(self, seed):
        automaton = random_nfa(random.Random(seed))
        assert contained_in(automaton, automaton)
