"""Tests for the Section 5.3 and Section 6 lower-bound generators.

The instances themselves are (by design) infeasible to *decide*, so
validation is semantic and structural: sizes grow polynomially in n,
the generated programs have the claimed shape (linear / nonrecursive),
expansions decode to bit traces, error queries match exactly the
flawed expansions, and the Section 6 nonrecursive checker fires on
exactly the corrupted traces.
"""

import pytest

from repro.automata.kernel import KernelConfig
from repro.core.boundedness import search_boundedness
from repro.core.containment import decide_containment_in_ucq
from repro.cq.homomorphism import find_homomorphism
from repro.datalog.analysis import is_linear, is_nonrecursive, is_recursive
from repro.datalog.engine import Engine, EngineConfig, evaluate
from repro.datalog.unfold import expansion_union
from repro.core.word_path import is_chain_program
from repro.lowerbounds.encoding_nonrec import encode_nonrecursive, trace_database
from repro.lowerbounds.encoding_space import (
    decode_expansion,
    encode_deterministic,
    trace_addresses,
)
from repro.lowerbounds.turing import sweeping_machine, tiny_accepting_machine
from repro.trees.expansion import unfolding_trees


@pytest.fixture(scope="module")
def machine():
    return sweeping_machine()


@pytest.fixture(scope="module")
def enc(machine):
    return encode_deterministic(machine, 2)


class TestSpaceEncodingStructure:
    def test_program_is_linear_chain(self, enc):
        assert is_recursive(enc.program)
        assert is_linear(enc.program)
        assert is_chain_program(enc.program)

    def test_goal_is_boolean(self, enc):
        assert enc.program.arity["c"] == 0
        assert enc.union.arity == 0

    def test_all_error_families_present(self, enc):
        expected = {
            "first_address_nonzero",
            "carry",
            "sum",
            "config_change",
            "initial_first_cell",
            "initial_rest_blank",
            "transition",
            "transition_left",
            "transition_right",
        }
        assert expected <= set(enc.query_families)

    def test_program_growth_is_linear_in_n(self, machine):
        sizes = [encode_deterministic(machine, n,
                                      include_transition_errors=False).sizes()
                 for n in (1, 2, 3, 4)]
        rules = [s["program_rules"] for s in sizes]
        deltas = [b - a for a, b in zip(rules, rules[1:])]
        assert len(set(deltas)) == 1  # exactly 4 new address rules per n

    def test_query_count_linear_in_n_without_transitions(self, machine):
        sizes = [encode_deterministic(machine, n,
                                      include_transition_errors=False).sizes()
                 for n in (2, 3, 4)]
        counts = [s["union_disjuncts"] for s in sizes]
        assert counts[0] < counts[1] < counts[2]
        # Quadratic at most (each family is O(n) queries of O(n) size).
        assert counts[2] - counts[1] <= (counts[1] - counts[0]) + 25

    def test_queries_are_edb_only(self, enc):
        idb = enc.program.idb_predicates
        for query in list(enc.union)[:50]:
            assert all(a.predicate not in idb for a in query.body)


class TestSpaceEncodingSemantics:
    def test_expansions_decode(self, enc):
        count = 0
        for tree in unfolding_trees(enc.program, "c", 6):
            steps = decode_expansion(tree, 2)
            levels = [s.level for s in steps]
            # Levels cycle 1, 2, 1, 2, ... (n = 2).
            assert levels == [(i % 2) + 1 for i in range(len(steps))]
            count += 1
            if count >= 25:
                break
        assert count > 0

    def test_correct_counter_not_flagged(self, enc, machine):
        """An expansion whose addresses count 0,1,2,3 with correct
        carries must escape all counter/sum error queries."""
        from repro.lowerbounds.encoding_space import (
            standard_carries,
            synthesize_trace_query,
        )

        blank = machine.blank
        cells = [
            {"address": a, "carries": standard_carries(a, 2), "symbol": blank}
            for a in range(4)
        ]
        cells[0]["symbol"] = (machine.initial_state, blank)
        query_atoms = synthesize_trace_query(2, cells).body
        flagged = [
            q for q in enc.union
            if _is_counter_query(q)
            and find_homomorphism(q.body, query_atoms) is not None
        ]
        assert flagged == []

    def test_wrong_counter_flagged(self, enc, machine):
        """A trace whose second address repeats 0 must be caught."""
        from repro.lowerbounds.encoding_space import (
            standard_carries,
            synthesize_trace_query,
        )

        blank = machine.blank
        cells = [
            {"address": 0, "carries": standard_carries(0, 2), "symbol": blank},
            {"address": 0, "carries": standard_carries(0, 2), "symbol": blank},
        ]
        query_atoms = synthesize_trace_query(2, cells).body
        assert any(
            find_homomorphism(q.body, query_atoms) is not None
            for q in enc.union
            if _is_counter_query(q)
        )

    def test_bad_carry_flagged(self, enc, machine):
        from repro.lowerbounds.encoding_space import synthesize_trace_query

        blank = machine.blank
        # First carry bit 0: always an error.
        cells = [{"address": 0, "carries": [0, 0], "symbol": blank}]
        query_atoms = synthesize_trace_query(2, cells).body
        assert any(
            find_homomorphism(q.body, query_atoms) is not None
            for q in enc.union
            if _is_counter_query(q)
        )

    def test_wrong_first_address_flagged(self, enc, machine):
        from repro.lowerbounds.encoding_space import (
            standard_carries,
            synthesize_trace_query,
        )

        blank = machine.blank
        cells = [
            {"address": 2, "carries": standard_carries(2, 2), "symbol": blank}
        ]
        query_atoms = synthesize_trace_query(2, cells).body
        assert any(
            find_homomorphism(q.body, query_atoms) is not None
            for q in enc.union
            if _is_counter_query(q)
        )


def _is_counter_query(query) -> bool:
    predicates = {a.predicate for a in query.body}
    # Counter/sum queries never mention symbol predicates.
    return not any(p.startswith("q_") for p in predicates)


class TestNonrecEncoding:
    @pytest.fixture(scope="class")
    def enc6(self, machine):
        return encode_nonrecursive(machine, 1)

    @pytest.fixture(scope="class")
    def legal_trace(self, machine):
        return machine.run_configurations(4)  # 4 cells = 2^(2^1)

    def test_shapes(self, enc6):
        assert is_recursive(enc6.program) and is_linear(enc6.program)
        assert is_nonrecursive(enc6.nonrecursive)

    def test_sizes_polynomial(self, machine):
        sizes = [
            encode_nonrecursive(machine, n, include_transition_errors=False).sizes()
            for n in (1, 2, 3, 4)
        ]
        rules = [s["nonrecursive_rules"] for s in sizes]
        deltas = [b - a for a, b in zip(rules, rules[1:])]
        assert len(set(deltas)) == 1  # six subprogram rules per level

    def test_legal_trace_not_flagged(self, enc6, machine, legal_trace):
        db = trace_database(machine, legal_trace, 1)
        assert not evaluate(enc6.nonrecursive, db).facts("c")

    def test_legal_trace_accepted_by_pi(self, enc6, machine, legal_trace):
        db = trace_database(machine, legal_trace, 1)
        assert evaluate(enc6.program, db).facts("c")

    def test_truncated_trace_rejected_by_pi(self, enc6, machine, legal_trace):
        db = trace_database(machine, legal_trace[:-1], 1)
        assert not evaluate(enc6.program, db).facts("c")

    # Valid corruption targets are address points; with n=1 every third
    # point (2, 5, 8, ...) is a symbol point the flip would miss.
    @pytest.mark.parametrize("corrupt_at", [0, 1, 3, 4])
    def test_corrupted_counter_flagged(self, enc6, machine, legal_trace, corrupt_at):
        db = trace_database(machine, legal_trace, 1, corrupt_counter_at=corrupt_at)
        assert evaluate(enc6.nonrecursive, db).facts("c")

    def test_transition_violation_flagged(self, enc6, machine, legal_trace):
        corrupted = list(legal_trace)
        config = list(corrupted[1])
        config[3] = "1"  # plant a symbol the machine never writes there
        corrupted[1] = tuple(config)
        db = trace_database(machine, corrupted, 1)
        assert evaluate(enc6.nonrecursive, db).facts("c")

    def test_wrong_size_trace_rejected(self, machine, legal_trace):
        with pytest.raises(ValueError):
            trace_database(machine, [legal_trace[0][:2]], 1)


# ----------------------------------------------------------------------
# Verdicts, not just shapes: the decision procedures run on the
# encoded machines at the sizes where they terminate, under both
# automaton kernels.  (The full EXPSPACE containment questions are
# infeasible by construction -- those live in the budgeted tag:stress
# tier, repro.workloads.stress -- but the decidable edges give real
# verdicts here.)
# ----------------------------------------------------------------------

BOTH_KERNELS = [KernelConfig(backend="bitset"),
                KernelConfig(backend="frozenset")]


class TestEncodingVerdicts:
    @pytest.fixture(scope="class")
    def tiny_enc(self):
        return encode_deterministic(tiny_accepting_machine(), 1)

    @pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
    def test_space_encoding_is_unbounded(self, machine, kernel):
        # The Section 5.3 chain program threads the counter through an
        # unbounded recursion: no boundedness certificate exists at any
        # depth, so the semi-decision must come back empty-handed.
        enc = encode_deterministic(machine, 1)
        result = search_boundedness(enc.program, "c", max_depth=1,
                                    kernel=kernel)
        assert result.bounded is None and result.depth is None

    @pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
    def test_space_encoding_not_contained_in_truncation(self, tiny_enc,
                                                        kernel):
        # Deeper expansions of the chain program exist (one per counter
        # step), so Pi is not contained in its own depth-1 expansion
        # union: the kernels must find the counterexample expansion.
        # This is the largest containment question on the encodings
        # that both kernels still answer (seconds-scale; the Theta
        # direction of Theorem 5.13 is the budgeted stress tier).
        result = decide_containment_in_ucq(
            tiny_enc.program, "c",
            expansion_union(tiny_enc.program, "c", 1),
            kernel=kernel)
        assert result.contained is False

    @pytest.mark.parametrize("corrupt_at", [-1, 0])
    def test_trace_verdict_matches_oracle_on_all_engines(self, corrupt_at):
        # The Section 6 checker Pi' is itself an evaluation workload:
        # a legal trace derives no error fact, a corrupted counter
        # derives exactly c() -- on every engine backend.
        m = sweeping_machine()
        enc6 = encode_nonrecursive(m, 1, include_transition_errors=False)
        configs = m.run_configurations(4)[:2]
        db = trace_database(m, configs, 1, corrupt_counter_at=corrupt_at)
        expected = 0 if corrupt_at < 0 else 1
        for config in (EngineConfig(),
                       EngineConfig(compiled=True, backend="rows"),
                       EngineConfig(compiled=False)):
            rows = Engine(config).query(enc6.nonrecursive, db, "c")
            assert len(rows) == expected, config
