"""Unit tests for repro.datalog.terms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.terms import (
    Constant,
    FreshVariableFactory,
    Variable,
    is_constant,
    is_variable,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Xs")) == "Xs"

    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("x"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_int_payload(self):
        assert str(Constant(42)) == "42"

    def test_lowercase_identifier_renders_bare(self):
        assert str(Constant("abc")) == "abc"

    def test_weird_string_renders_quoted(self):
        rendered = str(Constant("has space"))
        assert rendered.startswith("'") or rendered.startswith('"')

    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("A"))

    def test_variable_and_constant_never_equal(self):
        assert Variable("a") != Constant("a")


class TestFreshVariableFactory:
    def test_produces_distinct_variables(self):
        factory = FreshVariableFactory()
        seen = {factory.fresh() for _ in range(100)}
        assert len(seen) == 100

    def test_avoids_initial_names(self):
        factory = FreshVariableFactory(avoid=["V0", "V1"])
        assert factory.fresh() == Variable("V2")

    def test_avoids_variables_given_as_objects(self):
        factory = FreshVariableFactory(avoid=[Variable("V0")])
        assert factory.fresh() == Variable("V1")

    def test_avoid_can_be_extended(self):
        factory = FreshVariableFactory()
        factory.avoid(["V0"])
        assert factory.fresh() == Variable("V1")

    def test_prefix(self):
        factory = FreshVariableFactory(prefix="W")
        assert factory.fresh().name.startswith("W")

    @given(st.lists(st.text(alphabet="VW019", min_size=1, max_size=4)))
    def test_never_emits_avoided_name(self, avoid):
        factory = FreshVariableFactory(avoid=avoid)
        fresh = [factory.fresh() for _ in range(20)]
        assert not ({v.name for v in fresh} & set(avoid))
