"""Cross-module property-based tests (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.containment import ucq_contained_in
from repro.datalog.database import Database
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.unfold import expansion_union
from repro.programs import transitive_closure

from .conftest import random_graph_database

TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).")


class TestMonotonicity:
    """Positive Datalog is monotone: more input facts never remove
    derived facts."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 20), st.integers(0, 2 ** 20))
    def test_engine_monotone(self, seed_a, seed_b):
        rng_a, rng_b = random.Random(seed_a), random.Random(seed_b)
        small = random_graph_database(rng_a, nodes=4)
        big = small.copy()
        for predicate, row in random_graph_database(rng_b, nodes=4).facts():
            big.add(predicate, row)
        assert evaluate(TC, small).facts("p") <= evaluate(TC, big).facts("p")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 20))
    def test_stagewise_monotone(self, seed):
        db = random_graph_database(random.Random(seed), nodes=4)
        previous = frozenset()
        for stage in (1, 2, 3):
            current = evaluate(TC, db, max_stages=stage).facts("p")
            assert previous <= current
            previous = current


class TestExpansionHierarchy:
    """Deeper truncations define larger queries (Proposition 2.6)."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=1, max_value=3))
    def test_truncation_chain(self, height):
        program = transitive_closure()
        shallow = expansion_union(program, "p", height)
        deep = expansion_union(program, "p", height + 1)
        assert ucq_contained_in(shallow, deep)
        assert not ucq_contained_in(deep, shallow)


class TestFreshCombos:
    """The semi-naive combo enumerator must cover every combo across
    the rounds (omissions would make the fixpoint incomplete).

    Duplicates across rounds are permitted -- entries inserted mid-round
    carry the current generation, so a combo can qualify both through
    an "after" slot and later as a pivot; the antichain insert is
    idempotent, so duplicates only cost time, never correctness.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
            min_size=1,
            max_size=3,
        )
    )
    def test_full_coverage(self, generation_lists):
        from repro.core.tree_containment import _fresh_combos

        options = [
            [(f"s{i}_{j}", f"w{i}_{j}", generation) for j, generation in enumerate(gens)]
            for i, gens in enumerate(generation_lists)
        ]
        seen = set()
        for round_number in range(1, 6):
            for combo in _fresh_combos(options, round_number):
                seen.add(tuple(entry[0] for entry in combo))
        expected = 1
        for opts in options:
            expected *= len(opts)
        assert len(seen) == expected

    def test_no_stale_only_combos_in_late_rounds(self):
        from repro.core.tree_containment import _fresh_combos

        # All entries generation 0: nothing should fire after round 1.
        options = [[("a", "w", 0)], [("b", "w", 0)]]
        assert list(_fresh_combos(options, 1))
        assert not list(_fresh_combos(options, 3))
