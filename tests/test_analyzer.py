"""The static analyzer (``repro.analysis``): diagnostics, class
certificates, plan lints, and their end-to-end wiring.

Covers the full diagnostic code table (E/W/H), both H001 sufficient
conditions and their boundary cases, the ``EngineConfig(validate=True)``
gate, ``Session.analyze`` / the certificate fast paths, and the
``python -m repro analyze`` CLI.
"""

import json

import pytest

from repro import __main__ as cli
from repro.analysis import (
    CODES,
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    analyze_program,
    analyze_source,
    boundedness_certificate,
    class_certificates,
    diagnostic,
    plan_diagnostics,
    safety_errors,
)
from repro.datalog import (
    Database,
    Engine,
    EngineConfig,
    UnsafeProgramError,
    parse_program,
)
from repro.programs import transitive_closure
from repro.programs.library import buys_bounded
from repro.session import Session

BUYS = buys_bounded()
TC = transitive_closure()

UNSAFE = "p(X, Y) :- e(X)."
CLEAN = "p(X, Y) :- e(X, Y). q(X) :- p(X, X)."


# ----------------------------------------------------------------------
# The diagnostic vocabulary.
# ----------------------------------------------------------------------

class TestDiagnostics:
    def test_code_table_is_complete_and_typed(self):
        assert set(SEVERITIES) == {"error", "warning", "hint"}
        for code, (name, severity, hint) in CODES.items():
            assert code[0] in "EWH" and code[1:].isdigit()
            assert severity in SEVERITIES
            assert name and hint
        # Severity letter matches the code prefix.
        for code, (_, severity, _) in CODES.items():
            assert severity == {"E": "error", "W": "warning",
                                "H": "hint"}[code[0]]

    def test_factory_rejects_unknown_codes(self):
        with pytest.raises(KeyError):
            diagnostic("E999", "nope")

    def test_diagnostic_render_and_dict(self):
        diag = diagnostic("E001", "head variable(s) Y not bound",
                          predicate="p", rule="p(X, Y) :- e(X).",
                          rule_index=0)
        assert diag.code == "E001" and diag.severity == "error"
        rendered = diag.render()
        assert "E001" in rendered and "unsafe-rule" in rendered
        record = diag.as_dict()
        assert record["rule_index"] == 0 and record["predicate"] == "p"
        # Optional keys are omitted when unset.
        bare = diagnostic("W005", "cross product").as_dict()
        assert "predicate" not in bare and "rule" not in bare

    def test_report_orders_by_severity(self):
        report = analyze_program(parse_program(
            "p(X, Y) :- e(X)."
            "p(X, Y) :- e(X)."
            "q(A, B) :- e(A), f(B)."), goal="q")
        severities = [d.severity for d in report.diagnostics]
        assert severities == sorted(
            severities, key=("error", "warning", "hint").index)
        assert not report.ok and report.errors and report.warnings


# ----------------------------------------------------------------------
# Layer 1: safety and well-formedness.
# ----------------------------------------------------------------------

class TestSafetyChecks:
    def test_unsafe_rule_flagged(self):
        report = analyze_source(UNSAFE, goal="p")
        assert report.codes() == ("E001",)
        (diag,) = report.errors
        assert "Y" in diag.message and diag.rule_index == 0

    def test_bodiless_variable_head_is_unsafe(self):
        assert [d.code for d in safety_errors(parse_program("p(X, X)."))] \
            == ["E001"]

    def test_ground_fact_rule_is_safe(self):
        assert not safety_errors(parse_program("p(a, b)."))

    def test_clean_program_has_no_errors(self):
        report = analyze_source(CLEAN, goal="q")
        assert report.ok and not report.errors

    def test_undefined_goal_e002(self):
        body_only = analyze_source(CLEAN, goal="e")
        assert "E002" in body_only.codes()
        assert "bodies" in body_only.errors[0].message
        missing = analyze_source(CLEAN, goal="zzz")
        assert "E002" in missing.codes()
        assert "at all" in missing.errors[0].message

    def test_arity_mismatch_e003(self):
        report = analyze_source("p(X) :- e(X, X). p(X, Y) :- e(X, Y).")
        assert report.codes() == ("E003",)

    def test_parse_error_e004(self):
        report = analyze_source("p(X :- q(X).")
        assert report.codes() == ("E004",)
        assert not report.ok

    def test_duplicate_rule_w001(self):
        report = analyze_source("p(X) :- e(X, X). p(X) :- e(X, X).",
                                goal="p")
        assert "W001" in report.codes()

    def test_unreachable_rule_w003(self):
        report = analyze_source(
            "p(X) :- e(X, X). orphan(X) :- e(X, X).", goal="p")
        assert "W003" in report.codes()
        (warning,) = [d for d in report.warnings if d.code == "W003"]
        assert warning.predicate == "orphan"


# ----------------------------------------------------------------------
# Layer 2: class certificates and H001.
# ----------------------------------------------------------------------

class TestCertificates:
    def test_nonrecursive_classes(self):
        classes, hints = class_certificates(parse_program(CLEAN))
        assert "nonrecursive" in classes and "linear" in classes
        assert {h.code for h in hints} >= {"H002", "H003"}

    def test_buys_is_linear_sirup_chain(self):
        report = analyze_program(BUYS, goal="buys")
        assert {"linear", "sirup", "chain"} <= set(report.classes)

    def test_h001_nonrecursive_slice_depth(self):
        cert = boundedness_certificate(
            parse_program("p(X) :- q(X), e(X, X). q(X) :- e(X, X)."), "p")
        assert cert["reason"] == "nonrecursive-slice"
        assert cert["depth_bound"] == 2

    def test_h001_guarded_self_recursion(self):
        cert = boundedness_certificate(BUYS, "buys")
        assert cert == {"code": "H001",
                        "reason": "guarded-self-recursion",
                        "depth_bound": 2, "goal": "buys"}

    def test_transitive_closure_gets_no_certificate(self):
        assert boundedness_certificate(TC, "p") is None

    def test_no_certificate_without_base_rule(self):
        program = parse_program("p(X, Y) :- t(X), p(Z, Y).")
        assert boundedness_certificate(program, "p") is None

    def test_no_certificate_when_passthrough_arg_reused(self):
        # Z occurs twice, so depth-2 truncation is not obviously
        # complete; the analyzer must stay silent.
        program = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Y) :- t(X, Z), p(Z, Y).")
        assert boundedness_certificate(program, "p") is None

    def test_no_certificate_for_unsafe_slice(self):
        assert boundedness_certificate(parse_program("p(X, Y)."),
                                       "p") is None

    def test_certificate_agrees_with_search(self):
        session = Session()
        cert = boundedness_certificate(BUYS, "buys")
        decision = session.bounded(BUYS, "buys",
                                   max_depth=cert["depth_bound"])
        assert decision.verdict["bounded"] is True
        assert decision.verdict["depth"] <= cert["depth_bound"]

    def test_reachable_slice_recorded(self):
        report = analyze_program(BUYS, goal="buys")
        assert set(report.certificates["reachable"]) \
            == {"buys", "likes", "trendy"}


# ----------------------------------------------------------------------
# Layer 3: plan lints.
# ----------------------------------------------------------------------

class TestPlanLints:
    def test_cross_product_w005(self):
        diags = plan_diagnostics(parse_program("q(A, B) :- e(A), f(B)."))
        assert "W005" in {d.code for d in diags}

    def test_bound_join_not_flagged(self):
        diags = plan_diagnostics(parse_program(
            "p(X, Y) :- e(X, Z), e(Z, Y)."))
        assert "W005" not in {d.code for d in diags}

    def test_unindexed_probe_w004(self):
        diags = plan_diagnostics(parse_program("p(X) :- e(X, X)."))
        assert "W004" in {d.code for d in diags}

    def test_dead_register_w002(self):
        diags = plan_diagnostics(parse_program(
            "p(X) :- e(X, Dead), f(X)."))
        codes = {d.code for d in diags}
        assert "W002" in codes

    def test_buys_plan_lints_present_in_report(self):
        report = analyze_program(BUYS, goal="buys")
        assert {"W002", "W005"} <= set(report.codes())


# ----------------------------------------------------------------------
# End-to-end wiring: engine gate, Session, CLI.
# ----------------------------------------------------------------------

class TestValidateGate:
    def test_gate_rejects_unsafe_program(self):
        db = Database.from_facts([("e", ("a",))])
        engine = Engine(EngineConfig(validate=True))
        with pytest.raises(UnsafeProgramError) as excinfo:
            engine.evaluate(parse_program(UNSAFE), db)
        assert excinfo.value.diagnostics[0]["code"] == "E001"

    def test_gate_off_by_default_active_domain(self):
        db = Database.from_facts([("e", ("a",))])
        result = Engine(EngineConfig()).evaluate(parse_program(UNSAFE), db)
        assert result.facts("p")  # active-domain instantiation

    def test_session_turns_gate_into_error_decision(self):
        session = Session(engine=EngineConfig(validate=True))
        db = Database.from_facts([("e", ("a",))])
        decision = session.evaluate(parse_program(UNSAFE), db)
        assert decision.error == "invalid-program"
        assert not decision.ok and not bool(decision)
        assert decision.meta["diagnostics"][0]["code"] == "E001"

    def test_session_query_short_circuits_on_gate(self):
        session = Session(engine=EngineConfig(validate=True))
        db = Database.from_facts([("e", ("a",))])
        decision = session.query(parse_program(UNSAFE), db, "p")
        assert decision.error == "invalid-program"
        assert decision.raw is None


class TestSessionAnalysis:
    def test_analyze_program_and_source(self):
        session = Session()
        assert session.analyze(BUYS, goal="buys").ok
        report = session.analyze(UNSAFE, goal="p")
        assert report.codes() == ("E001",)

    def test_bounded_certificate_fast_path(self):
        session = Session()
        fast = session.bounded(BUYS, "buys", use_certificates=True)
        assert fast.verdict == {"bounded": True, "depth": 2}
        assert fast.stats.get("certificate_fast_path") == 1
        assert fast.meta["analysis"]["code"] == "H001"
        assert fast.certificate is not None  # witness union materialized
        slow = session.bounded(BUYS, "buys")
        assert "certificate_fast_path" not in slow.stats
        assert slow.verdict["bounded"] is True

    def test_contains_certificates_pick_word_method(self):
        from repro.datalog.unfold import expansion_union

        session = Session()
        union = expansion_union(BUYS, "buys", 2)
        decision = session.contains(BUYS, "buys", union,
                                    use_certificates=True)
        assert decision.meta["analysis"]["method"] == "word"
        assert "chain" in decision.meta["analysis"]["classes"]
        plain = session.contains(BUYS, "buys", union)
        assert decision.verdict == plain.verdict


class TestAnalyzeCLI:
    def _write(self, tmp_path, source):
        path = tmp_path / "prog.dl"
        path.write_text(source)
        return str(path)

    def test_unsafe_program_exits_1(self, tmp_path, capsys):
        code = cli.main(["analyze", "--program",
                         self._write(tmp_path, UNSAFE), "--goal", "p"])
        assert code == 1
        out = capsys.readouterr().out
        assert "E001" in out

    def test_clean_program_json(self, tmp_path, capsys):
        code = cli.main(["analyze", "--program",
                         self._write(tmp_path, CLEAN), "--goal", "q",
                         "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "nonrecursive" in payload["classes"]
        assert payload["certificates"]["bounded"]["code"] == "H001"

    def test_scenario_analysis(self, capsys):
        assert cli.main(["analyze", "--scenario", "bounded_buys"]) == 0
        assert "H001" in capsys.readouterr().out

    def test_all_scenarios_sweep_is_clean(self, capsys):
        assert cli.main(["analyze", "--all-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "0 with error diagnostics" in out

    def test_requires_a_target(self, capsys):
        assert cli.main(["analyze"]) == 2


# ----------------------------------------------------------------------
# Report serialization invariants.
# ----------------------------------------------------------------------

def test_report_as_dict_roundtrips_to_json():
    report = analyze_program(BUYS, goal="buys")
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["goal"] == "buys"
    assert tuple(d["code"] for d in payload["diagnostics"]) \
        == report.codes()


def test_report_render_mentions_counts():
    report = analyze_source(UNSAFE, goal="p")
    assert "1 error" in report.render()
    assert isinstance(report, AnalysisReport)
    assert all(isinstance(d, Diagnostic) for d in report.diagnostics)
