"""Documentation cannot rot.

Two enforcement passes:

* **doctests** -- every module under ``repro`` is swept with
  :mod:`doctest`; any ``>>>`` example that stops working fails the
  suite (the package root's quickstart, the workloads examples, ...).
* **markdown snippets** -- every ```` ```python ```` fenced block in
  the README and ``docs/*.md`` is executed, cumulatively per file, so
  the published examples keep importing and asserting cleanly.
  Shell/json/text blocks are ignored.
"""

import doctest
import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "docs/ANALYSIS.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKS.md",
    "docs/FUZZING.md",
    "docs/RESILIENCE.md",
    "docs/SERVICE.md",
    "docs/THEORY.md",
]

MODULES = sorted(
    info.name
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
) + ["repro"]

PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"


def test_doctests_exist_somewhere():
    # The sweep above is vacuous if no module ships doctests; keep at
    # least the package-root quickstart and the workloads examples live.
    attempted = sum(
        doctest.testmod(importlib.import_module(name), verbose=False).attempted
        for name in MODULES
    )
    assert attempted >= 3


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_markdown_python_blocks_execute(relpath):
    """Execute the file's python blocks in one cumulative namespace
    (later blocks may reuse names defined by earlier ones)."""
    text = (REPO_ROOT / relpath).read_text()
    blocks = PYTHON_BLOCK.findall(text)
    namespace = {"__name__": f"docs_snippet::{relpath}"}
    for index, block in enumerate(blocks):
        code = compile(block, f"{relpath}[block {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


def test_readme_has_python_blocks():
    text = (REPO_ROOT / "README.md").read_text()
    assert len(PYTHON_BLOCK.findall(text)) >= 3


def test_theory_atlas_covers_every_core_module():
    """The acceptance bar: docs/THEORY.md cross-links every
    src/repro/core/* module by path."""
    atlas = (REPO_ROOT / "docs" / "THEORY.md").read_text()
    core = REPO_ROOT / "src" / "repro" / "core"
    for module in sorted(core.glob("*.py")):
        if module.name == "__init__.py":
            continue
        assert f"src/repro/core/{module.name}" in atlas, (
            f"docs/THEORY.md does not link src/repro/core/{module.name}"
        )


def test_benchmarks_doc_matches_registry():
    """BENCHMARKS.md documents the real verdict keys and cache hooks."""
    doc = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text()
    for needle in ("clear_shared_caches", "warm_shared_caches",
                   "BENCH_automata.json", "BENCH_plans.json",
                   "--verify-serial", "magic_beats_direct"):
        assert needle in doc, f"docs/BENCHMARKS.md lost mention of {needle}"
