"""Persistent warm-state snapshots (:mod:`repro.snapshot`).

The lifecycle contract: a snapshot is keyed by the producing session's
config fingerprint and restoring it is *never* load-bearing --
fingerprint mismatch, truncation, corruption, and concurrent writers
all degrade to a cold start (with a warning only when something on
disk is actually broken), while a clean restore turns a fresh
session's first decision into pure cache hits (the miss-counter
deltas asserted here are the same mechanism the service-worker
respawn test uses).
"""

import pickle
import threading
import time

import pytest

from repro.datalog.engine import EngineConfig
from repro.session import Session
from repro.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotWarning,
    load_snapshot,
    restore_session,
    save_snapshot,
    snapshot_path,
)

#: One decision scenario (automaton caches) and one evaluation
#: scenario (compiled plans + a columnar EDB image) -- together they
#: exercise every snapshot section.
WARM_SCENARIOS = ("bounded_buys", "eval_tc_chain_120")


@pytest.fixture()
def warm_dir(tmp_path):
    """A snapshot directory holding the warm state of a default-config
    session that ran ``WARM_SCENARIOS``."""
    writer = Session(name="snapshot-writer")
    for name in WARM_SCENARIOS:
        assert writer.run_scenario(name).ok
    path = save_snapshot(writer, tmp_path)
    assert path is not None and path.is_file()
    return tmp_path


def test_save_and_restore_roundtrip(warm_dir):
    session = Session(name="restored")
    assert restore_session(session, warm_dir)
    assert session.engine.plan_cache_size() > 0
    assert "eval_tc_chain_120" in session._snapshot_images


def test_restored_session_runs_on_pure_hits(warm_dir):
    """The acceptance mechanism: a restored session's first run of a
    snapshotted scenario must show zero misses on the caches the
    snapshot carries -- automata for the decision scenario, the EDB
    image for the evaluation scenario."""
    cold = Session(name="cold")
    restored = Session(name="restored")
    assert restore_session(restored, warm_dir)
    for name in WARM_SCENARIOS:
        cold_decision = cold.run_scenario(name)
        warm_decision = restored.run_scenario(name)
        # Bit-identical verdicts: the snapshot must never change what
        # is decided, only how fast.
        assert warm_decision.verdict == cold_decision.verdict
        assert warm_decision.checksum == cold_decision.checksum
    cold_stats = cold.cache_stats()["scope"]
    warm_stats = restored.cache_stats()["scope"]
    for table in ("core.cq_automaton", "core.ptree_automaton"):
        assert cold_stats[table]["misses"] > 0, table
        assert warm_stats[table]["misses"] == 0, (table, warm_stats)
        assert warm_stats[table]["hits"] > 0, (table, warm_stats)
    # The EDB image table cannot be a flat zero: the boundedness
    # procedure evaluates internally-constructed canonical databases
    # whose images are (correctly) built fresh in every session.  The
    # snapshot's claim is only about the *scenario payload* image: the
    # restored session skips exactly that build, so its miss count is
    # strictly below cold's and the adopted image registers as hits.
    images = "datalog.edb_images"
    assert warm_stats[images]["misses"] < cold_stats[images]["misses"], (
        warm_stats[images], cold_stats[images])
    assert warm_stats[images]["hits"] > 0, warm_stats[images]


def test_warm_accepts_snapshot_directory(warm_dir):
    session = Session(name="warmed")
    session.warm(scenario="eval_tc_chain_120", snapshot=warm_dir)
    stats = session.cache_stats()["scope"]
    assert stats["datalog.edb_images"]["misses"] == 0
    assert stats["datalog.edb_images"]["hits"] > 0


def test_fingerprint_mismatch_is_silent_cold_start(warm_dir, recwarn):
    other = Session(engine=EngineConfig(backend="rows"), name="other")
    assert not restore_session(other, warm_dir)
    assert other.engine.plan_cache_size() == 0
    assert not [w for w in recwarn.list
                if issubclass(w.category, SnapshotWarning)]
    # A renamed file must not smuggle a foreign config's state in:
    # the payload's own fingerprint is checked, not just the name.
    donor = snapshot_path(warm_dir, Session(name="donor").fingerprint)
    renamed = snapshot_path(warm_dir, other.fingerprint)
    renamed.write_bytes(donor.read_bytes())
    assert load_snapshot(warm_dir, other.fingerprint) is None


def test_corrupt_snapshot_warns_and_cold_starts(warm_dir):
    session = Session(name="victim")
    path = snapshot_path(warm_dir, session.fingerprint)
    path.write_bytes(b"\x80\x04garbage")
    with pytest.warns(SnapshotWarning, match="corrupt"):
        assert not restore_session(session, warm_dir)
    assert session.engine.plan_cache_size() == 0


def test_truncated_snapshot_warns_and_cold_starts(warm_dir):
    session = Session(name="victim")
    path = snapshot_path(warm_dir, session.fingerprint)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.warns(SnapshotWarning):
        assert not restore_session(session, warm_dir)


def test_wrong_payload_shape_is_rejected(tmp_path):
    session = Session(name="victim")
    path = snapshot_path(tmp_path, session.fingerprint)
    path.write_bytes(pickle.dumps(["not", "a", "dict"]))
    with pytest.warns(SnapshotWarning, match="malformed"):
        assert load_snapshot(tmp_path, session.fingerprint) is None
    path.write_bytes(pickle.dumps({
        "format": SNAPSHOT_FORMAT + 1,
        "fingerprint": session.fingerprint,
    }))
    assert load_snapshot(tmp_path, session.fingerprint) is None  # silent


def test_missing_directory_and_unconfigured_are_noops(tmp_path,
                                                      monkeypatch):
    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    session = Session(name="nowhere")
    assert not restore_session(session)            # nothing configured
    assert save_snapshot(session) is None
    assert not restore_session(session, tmp_path / "absent")


def test_concurrent_writers_last_writer_wins(tmp_path):
    """Two sessions snapshotting the same key race safely: every read
    during the race sees a *complete* snapshot (or none), and the
    final state is one writer's payload, never a torn mix."""
    writers = []
    for index in range(2):
        session = Session(name=f"racer-{index}")
        assert session.run_scenario("eval_tc_chain_120").ok
        writers.append(session)
    fingerprint = writers[0].fingerprint
    assert writers[1].fingerprint == fingerprint  # same key by design

    stop = threading.Event()
    errors = []

    def hammer(session):
        while not stop.is_set():
            try:
                save_snapshot(session, tmp_path)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    threads = [threading.Thread(target=hammer, args=(session,))
               for session in writers]
    for thread in threads:
        thread.start()
    complete_reads = 0
    try:
        # Read until the race has demonstrably produced observable
        # snapshots (a fixed iteration count can finish before either
        # writer lands its first file).
        deadline = time.monotonic() + 10.0
        while complete_reads < 20 and time.monotonic() < deadline:
            payload = load_snapshot(tmp_path, fingerprint)
            if payload is not None:
                assert payload["fingerprint"] == fingerprint
                assert "plans" in payload and "tables" in payload
                complete_reads += 1
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors
    assert complete_reads > 0
    # The survivor restores cleanly (whichever writer won).
    final = Session(name="survivor")
    assert restore_session(final, tmp_path)


def test_adopt_image_rejects_shape_mismatch(warm_dir):
    """A banked image whose relation shapes disagree with the payload
    database is dropped, not trusted."""
    from repro.datalog.columns import adopt_image, edb_image
    from repro.datalog.database import Database
    from repro.workloads.scenarios import get_scenario

    payload = get_scenario("eval_tc_chain_120").build()
    session = Session(name="shapes")
    with session.activated():
        image = edb_image(payload["database"])
        other = Database.from_atoms([])
        other.add("e", ("a", "b"))
        assert not adopt_image(other, image)        # count mismatch
        good = get_scenario("eval_tc_chain_120").build()["database"]
        assert adopt_image(good, image)             # deterministic twin
