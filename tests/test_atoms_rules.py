"""Unit tests for atoms and rules."""

import pytest

from repro.datalog.atoms import Atom, atoms_constants, atoms_variables, make_atom
from repro.datalog.parser import parse_atom, parse_rule
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, FreshVariableFactory, Variable


class TestAtom:
    def test_make_atom_conventions(self):
        atom = make_atom("p", "X", "a", 3)
        assert atom.args == (Variable("X"), Constant("a"), Constant(3))

    def test_arity(self):
        assert make_atom("p", "X", "Y").arity == 2
        assert make_atom("p").arity == 0

    def test_variables_with_repeats(self):
        atom = make_atom("p", "X", "X", "Y")
        assert atom.variables() == (Variable("X"), Variable("X"), Variable("Y"))
        assert atom.variable_set() == {Variable("X"), Variable("Y")}

    def test_constants(self):
        atom = make_atom("p", "X", "a")
        assert atom.constants() == {Constant("a")}

    def test_is_ground(self):
        assert make_atom("p", "a", "b").is_ground()
        assert not make_atom("p", "X").is_ground()
        assert make_atom("p").is_ground()

    def test_substitute(self):
        atom = make_atom("p", "X", "Y", "a")
        result = atom.substitute({Variable("X"): Constant("c")})
        assert result == make_atom("p", "c", "Y", "a")

    def test_substitute_to_variable(self):
        atom = make_atom("p", "X")
        assert atom.substitute({Variable("X"): Variable("Z")}) == make_atom("p", "Z")

    def test_str_roundtrip(self):
        atom = make_atom("edge", "X", "b")
        assert parse_atom(str(atom)) == atom

    def test_zero_ary_str(self):
        assert str(make_atom("goal")) == "goal"

    def test_helpers(self):
        atoms = [make_atom("p", "X", "a"), make_atom("q", "Y")]
        assert atoms_variables(atoms) == {Variable("X"), Variable("Y")}
        assert atoms_constants(atoms) == {Constant("a")}


class TestRule:
    def test_parse_and_str_roundtrip(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        assert parse_rule(str(rule)) == rule

    def test_empty_body(self):
        rule = parse_rule("p(X, X).")
        assert rule.body == ()
        assert not rule.is_safe

    def test_empty_body_with_neck(self):
        assert parse_rule("p(X, X) :- .").body == ()

    def test_safety(self):
        assert parse_rule("p(X) :- e(X, Y).").is_safe
        assert not parse_rule("p(X, W) :- e(X, Y).").is_safe

    def test_is_fact(self):
        assert parse_rule("p(a, b).").is_fact
        assert not parse_rule("p(X).").is_fact
        assert not parse_rule("p(a) :- e(a).").is_fact

    def test_variables(self):
        rule = parse_rule("p(X, Y) :- e(X, Z).")
        assert rule.variables() == {Variable("X"), Variable("Y"), Variable("Z")}
        assert rule.body_variables() == {Variable("X"), Variable("Z")}

    def test_rename_apart_is_fresh_and_structure_preserving(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        renamed = rule.rename_apart(FreshVariableFactory(prefix="F"))
        assert renamed.variables().isdisjoint(rule.variables())
        assert renamed.head.predicate == "p"
        assert len(renamed.body) == 2
        # Shared-variable structure is preserved.
        assert renamed.head.args[0] == renamed.body[0].args[0]
        assert renamed.body[0].args[1] == renamed.body[1].args[0]

    def test_idb_edb_split(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y), q(Z).")
        assert [a.predicate for a in rule.idb_body_atoms({"p", "q"})] == ["p", "q"]
        assert [a.predicate for a in rule.edb_body_atoms({"p", "q"})] == ["e"]

    def test_substitute_applies_to_head_and_body(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        result = rule.substitute({Variable("X"): Constant("a")})
        assert result == parse_rule("p(a) :- e(a, Y).")

    def test_constants(self):
        rule = parse_rule("p(X) :- e(X, a), f(b).")
        assert rule.constants() == {Constant("a"), Constant("b")}
