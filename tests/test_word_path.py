"""Linear / chain-form pathway tests (Theorem 5.12 EXPSPACE case)."""

import pytest

from repro.core.word_path import (
    datalog_contained_in_ucq_linear,
    is_chain_program,
    to_chain_form,
)
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.engine import query
from repro.datalog.errors import NotLinearError
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.unfold import expansion_union


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


class TestChainForm:
    def test_tc_is_chain(self, tc_program):
        assert is_chain_program(tc_program)

    def test_nonlinear_is_not_chain(self):
        program = parse_program(
            "p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y)."
        )
        assert not is_chain_program(program)

    def test_linear_with_auxiliary_idb_not_chain(self):
        program = parse_program(
            """
            p(X, Y) :- aux(X, Z), p(Z, Y).
            p(X, Y) :- e0(X, Y).
            aux(X, Y) :- f(X, Y).
            aux(X, Y) :- g(X, Y).
            """
        )
        assert not is_chain_program(program)
        chained = to_chain_form(program, "p")
        assert is_chain_program(chained)
        # Two aux expansions split the recursive rule in two.
        recursive_rules = [r for r in chained.rules if r.head.predicate == "p"
                           and any(a.predicate == "p" for a in r.body)]
        assert len(recursive_rules) == 2

    def test_chain_form_preserves_semantics(self):
        program = parse_program(
            """
            p(X, Y) :- aux(X, Z), p(Z, Y).
            p(X, Y) :- e0(X, Y).
            aux(X, Y) :- f(X, Y).
            aux(X, Y) :- g(X, Y).
            """
        )
        chained = to_chain_form(program, "p")
        from repro.datalog.database import Database

        db = Database.from_facts(
            [("f", ("a", "b")), ("g", ("b", "c")), ("e0", ("c", "d"))]
        )
        assert query(program, db, "p") == query(chained, db, "p")

    def test_chain_form_rejects_nonlinear(self):
        program = parse_program(
            "p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y)."
        )
        with pytest.raises(NotLinearError):
            to_chain_form(program, "p")

    def test_word_pathway_rejects_nonchain(self):
        program = parse_program(
            "p(X, Y) :- p(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y)."
        )
        with pytest.raises(NotLinearError):
            datalog_contained_in_ucq_linear(
                program, "p", UnionOfConjunctiveQueries([], arity=2)
            )


class TestWordContainment:
    def test_matches_tree_on_truncations(self, tc_program):
        from repro.core.tree_containment import datalog_contained_in_ucq

        for height in (1, 2, 3):
            union = expansion_union(tc_program, "p", height)
            word = datalog_contained_in_ucq_linear(tc_program, "p", union)
            tree = datalog_contained_in_ucq(tc_program, "p", union)
            assert word.contained == tree.contained == False  # noqa: E712

    def test_word_pathway_positive(self, buys1):
        union = UnionOfConjunctiveQueries(
            [cq("buys(X0, X1)", "likes(Z, X1)")]
        )
        assert datalog_contained_in_ucq_linear(buys1, "buys", union).contained

    def test_word_witness_is_valid_proof_tree(self, tc_program):
        union = expansion_union(tc_program, "p", 2)
        result = datalog_contained_in_ucq_linear(tc_program, "p", union)
        assert not result.contained
        tree = result.witness
        tree.validate(tc_program)
        from repro.trees.proof import is_proof_tree

        assert is_proof_tree(tree, tc_program)
        # And it is genuinely not covered: no strong mapping from any
        # disjunct.
        from repro.trees.strong import ucq_covers_proof_tree

        assert not ucq_covers_proof_tree(union, tree, tc_program)

    def test_antichain_ablation(self, tc_program):
        union = expansion_union(tc_program, "p", 2)
        a = datalog_contained_in_ucq_linear(tc_program, "p", union, use_antichain=True)
        b = datalog_contained_in_ucq_linear(tc_program, "p", union, use_antichain=False)
        assert a.contained == b.contained
