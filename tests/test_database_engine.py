"""Database and evaluation-engine tests."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.datalog.engine import evaluate, naive_evaluate, query, seminaive_evaluate
from repro.datalog.errors import ArityError, ValidationError
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant

from .conftest import random_graph_database


class TestDatabase:
    def test_add_and_contains(self):
        db = Database()
        db.add("e", ("a", "b"))
        assert db.contains("e", ("a", "b"))
        assert not db.contains("e", ("b", "a"))

    def test_arity_enforced(self):
        db = Database()
        db.add("e", ("a", "b"))
        with pytest.raises(ArityError):
            db.add("e", ("a",))

    def test_non_ground_atom_rejected(self):
        from repro.datalog.atoms import make_atom

        db = Database()
        with pytest.raises(ValidationError):
            db.add_atom(make_atom("p", "X"))

    def test_active_domain(self):
        db = Database.from_facts([("e", ("a", "b")), ("f", ("c",))])
        assert db.active_domain() == {Constant("a"), Constant("b"), Constant("c")}

    def test_merge_and_restrict(self):
        left = Database.from_facts([("e", ("a", "b"))])
        right = Database.from_facts([("f", ("c",))])
        merged = left.merge(right)
        assert len(merged) == 2
        assert merged.restrict(["e"]).predicates() == {"e"}

    def test_copy_is_independent(self):
        db = Database.from_facts([("e", ("a", "b"))])
        copy = db.copy()
        copy.add("e", ("b", "c"))
        assert len(db) == 1 and len(copy) == 2

    def test_equality_ignores_empty_relations(self):
        a = Database.from_facts([("e", ("a", "b"))])
        b = Database.from_facts([("e", ("a", "b"))])
        b._relations.setdefault("ghost", set())
        assert a == b


TC = """
p(X, Y) :- e(X, Z), p(Z, Y).
p(X, Y) :- e(X, Y).
"""


class TestEvaluation:
    def test_transitive_closure_matches_networkx(self):
        rng = random.Random(7)
        program = parse_program(TC)
        for _ in range(10):
            db = random_graph_database(rng, nodes=6)
            graph = nx.DiGraph(
                (a.value, b.value) for a, b in db.relation("e")
            )
            closure = nx.transitive_closure(graph, reflexive=False)
            expected = set(closure.edges())
            got = {(a.value, b.value) for a, b in query(program, db, "p")}
            assert got == expected

    def test_naive_equals_seminaive(self):
        rng = random.Random(3)
        program = parse_program(TC)
        for _ in range(10):
            db = random_graph_database(rng, nodes=5)
            assert naive_evaluate(program, db).facts("p") == seminaive_evaluate(
                program, db
            ).facts("p")

    def test_stage_bound_semantics(self):
        # A chain a->b->c->d: stage i of the TC program derives paths
        # of length at most i.
        program = parse_program(TC)
        db = Database.from_facts(
            [("e", ("a", "b")), ("e", ("b", "c")), ("e", ("c", "d"))]
        )
        s1 = query(program, db, "p", max_stages=1)
        assert {(a.value, b.value) for a, b in s1} == {
            ("a", "b"), ("b", "c"), ("c", "d")
        }
        s2 = query(program, db, "p", max_stages=2)
        assert ("a", "d") not in {(a.value, b.value) for a, b in s2}
        s3 = query(program, db, "p", max_stages=3)
        assert ("a", "d") in {(a.value, b.value) for a, b in s3}

    def test_stage_monotone(self):
        program = parse_program(TC)
        db = Database.from_facts([("e", ("a", "b")), ("e", ("b", "a"))])
        previous = frozenset()
        for stage in range(1, 5):
            current = query(program, db, "p", max_stages=stage)
            assert previous <= current
            previous = current

    def test_fixpoint_flag(self):
        program = parse_program(TC)
        db = Database.from_facts([("e", ("a", "b"))])
        result = evaluate(program, db)
        assert result.fixpoint

    def test_empty_database(self):
        program = parse_program(TC)
        assert query(program, Database(), "p") == frozenset()

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            """
        )
        db = Database.from_facts(
            [("zero", ("0",))] + [("succ", (str(i), str(i + 1))) for i in range(5)]
        )
        evens = {a.value for (a,) in query(program, db, "even")}
        odds = {a.value for (a,) in query(program, db, "odd")}
        assert evens == {"0", "2", "4"}
        assert odds == {"1", "3", "5"}

    def test_unsafe_empty_body_rule_uses_active_domain(self):
        program = parse_program(
            """
            d(X, X) :- .
            d(X, Y) :- e(X, Y).
            """
        )
        db = Database.from_facts([("e", ("a", "b"))])
        got = {(a.value, b.value) for a, b in query(program, db, "d")}
        assert got == {("a", "a"), ("b", "b"), ("a", "b")}

    def test_unsafe_head_variable(self):
        program = parse_program("pick(X, W) :- chosen(X).")
        db = Database.from_facts([("chosen", ("a",)), ("other", ("b",))])
        got = {(a.value, b.value) for a, b in query(program, db, "pick")}
        assert got == {("a", "a"), ("a", "b")}

    def test_constants_in_rules(self):
        program = parse_program("p(X) :- e(X, target).")
        db = Database.from_facts([("e", ("a", "target")), ("e", ("b", "c"))])
        assert {(a.value,) for (a,) in query(program, db, "p")} == {("a",)}

    def test_propositional_program(self):
        program = parse_program("yes :- a, b.")
        db = Database.from_facts([("a", ()), ("b", ())])
        assert query(program, db, "yes") == frozenset({()})
        db2 = Database.from_facts([("a", ())])
        assert query(program, db2, "yes") == frozenset()

    def test_goal_must_be_idb(self):
        program = parse_program(TC)
        with pytest.raises(ValidationError):
            query(program, Database(), "e")

    def test_as_database_merges(self):
        program = parse_program(TC)
        db = Database.from_facts([("e", ("a", "b"))])
        merged = evaluate(program, db).as_database(db)
        assert merged.contains("e", ("a", "b"))
        assert merged.contains("p", ("a", "b"))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 20))
    def test_naive_equals_seminaive_property(self, seed):
        rng = random.Random(seed)
        program = parse_program(TC)
        db = random_graph_database(rng, nodes=4)
        assert naive_evaluate(program, db).facts("p") == seminaive_evaluate(
            program, db
        ).facts("p")
