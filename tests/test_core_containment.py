"""End-to-end containment tests (Theorems 5.8, 5.11, 5.12) with
differential validation against the brute-force oracle and against
semantic evaluation on counterexample databases."""

import random

import pytest

from repro.cq.canonical import evaluate_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.core.containment import (
    contained_in_cq,
    contained_in_nonrecursive,
    contained_in_ucq,
    counterexample_database,
    cq_contained_in_datalog,
    nonrecursive_contained_in_datalog,
    ucq_contained_in_datalog,
)
from repro.core.tree_containment import datalog_contained_in_ucq
from repro.datalog.engine import evaluate
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.unfold import expansion_union, unfold_nonrecursive
from repro.trees.strong import brute_force_contained


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


def ucq(*queries) -> UnionOfConjunctiveQueries:
    return UnionOfConjunctiveQueries(list(queries))


class TestKnownAnswers:
    def test_tc_not_contained_in_single_step(self, tc_program):
        result = contained_in_cq(tc_program, "p", cq("p(X0, X1)", "e0(X0, X1)"))
        assert not result.contained
        assert result.witness is not None

    def test_tc_not_contained_in_any_truncation(self, tc_program):
        for height in (1, 2, 3):
            union = expansion_union(tc_program, "p", height)
            assert not contained_in_ucq(tc_program, "p", union, method="tree")

    def test_bounded_program_contained(self, buys1, buys1_nr):
        union = unfold_nonrecursive(buys1_nr, "buys")
        assert contained_in_ucq(buys1, "buys", union, method="tree").contained
        assert contained_in_ucq(buys1, "buys", union, method="word").contained

    def test_unbounded_program_not_contained(self, buys2, buys2_nr):
        union = unfold_nonrecursive(buys2_nr, "buys")
        result = contained_in_ucq(buys2, "buys", union, method="tree")
        assert not result.contained
        # The witness must be a depth->=3 derivation.
        assert result.witness.height() >= 3

    def test_containment_in_weaker_query_holds(self, tc_program):
        # Every expansion starts with an edge out of X0... no: the base
        # case is a bare e0 edge.  A disjunction covering both rule
        # shapes at the top level works:
        union = ucq(
            cq("p(X0, X1)", "e0(X0, X1)"),
            cq("p(X0, X1)", "e(X0, Z)"),
        )
        assert contained_in_ucq(tc_program, "p", union, method="tree").contained

    def test_single_cq_covering_projection(self, buys1):
        # buys(X, Y) always ends in a likes(., Y) fact.
        assert contained_in_cq(buys1, "buys", cq("buys(X0, X1)", "likes(Z, X1)"))

    def test_nonlinear_program(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, Z), p(Z, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        # Contained in 'there is an edge out of X0' union 'edge into X1'?
        # Every expansion is an e-path from X0 to X1, so 'edge out of
        # X0' alone covers everything.
        assert contained_in_cq(program, "p", cq("p(X0, X1)", "e(X0, Z)")).contained
        assert not contained_in_cq(program, "p", cq("p(X0, X1)", "e(X0, X1)")).contained

    def test_empty_union_containment_fails_for_productive_program(self, tc_program):
        union = UnionOfConjunctiveQueries([], arity=2)
        assert not contained_in_ucq(tc_program, "p", union, method="tree").contained

    def test_goal_with_no_rules_is_contained_in_anything(self):
        program = parse_program("p(X, Y) :- q(X, Y), never(X).\nq(X, Y) :- q(Y, X).")
        # q has only the self-recursive rule: no finite proof tree.
        union = UnionOfConjunctiveQueries([], arity=2)
        assert contained_in_ucq(program, "q", union, method="tree").contained


class TestCounterexamples:
    def test_counterexample_database_refutes(self, tc_program):
        result = contained_in_cq(
            tc_program, "p", cq("p(X0, X1)", "e0(X0, X1)"), method="tree"
        )
        db, row = counterexample_database(result, tc_program)
        derived = evaluate(tc_program, db).facts("p")
        assert row in derived
        assert row not in evaluate_ucq(
            ucq(cq("p(X0, X1)", "e0(X0, X1)")), db
        )

    def test_counterexample_requires_failure(self, buys1, buys1_nr):
        union = unfold_nonrecursive(buys1_nr, "buys")
        result = contained_in_ucq(buys1, "buys", union)
        with pytest.raises(ValidationError):
            counterexample_database(result, buys1)

    def test_word_path_counterexample_also_refutes(self, buys2, buys2_nr):
        union = unfold_nonrecursive(buys2_nr, "buys")
        result = contained_in_ucq(buys2, "buys", union, method="word")
        assert not result.contained
        db, row = counterexample_database(result, buys2)
        assert row in evaluate(buys2, db).facts("buys")
        assert row not in evaluate_ucq(union, db)


class TestDifferential:
    def test_brute_force_agreement_tc(self, tc_program):
        unions = [
            expansion_union(tc_program, "p", 1),
            expansion_union(tc_program, "p", 2),
            ucq(cq("p(X0, X1)", "e0(X0, X1)"), cq("p(X0, X1)", "e(X0, Z)")),
            ucq(cq("p(X0, X0)", "e0(X0, X0)")),
        ]
        for union in unions:
            auto = datalog_contained_in_ucq(tc_program, "p", union).contained
            brute, _ = brute_force_contained(tc_program, "p", union, max_height=3)
            # brute force is exact for "no" and sound up to height 3.
            if not brute:
                assert not auto
            if auto:
                assert brute

    def test_tree_and_word_pathways_agree(self, tc_program, buys1, buys2):
        cases = [
            (tc_program, "p", expansion_union(tc_program, "p", 2)),
            (tc_program, "p",
             ucq(cq("p(X0, X1)", "e0(X0, X1)"), cq("p(X0, X1)", "e(X0, Z)"))),
            (buys1, "buys", ucq(cq("buys(X0, X1)", "likes(Z, X1)"))),
            (buys2, "buys", ucq(cq("buys(X0, X1)", "likes(Z, X1)"))),
        ]
        for program, goal, union in cases:
            tree = contained_in_ucq(program, goal, union, method="tree").contained
            word = contained_in_ucq(program, goal, union, method="word").contained
            assert tree == word, (goal, str(union))

    def test_antichain_ablation_agrees(self, tc_program):
        union = ucq(cq("p(X0, X1)", "e0(X0, X1)"), cq("p(X0, X1)", "e(X0, Z)"))
        with_ac = datalog_contained_in_ucq(tc_program, "p", union, use_antichain=True)
        without = datalog_contained_in_ucq(tc_program, "p", union, use_antichain=False)
        assert with_ac.contained == without.contained

    def test_random_databases_never_refute_a_yes(self, buys1, buys1_nr):
        union = unfold_nonrecursive(buys1_nr, "buys")
        assert contained_in_ucq(buys1, "buys", union).contained
        rng = random.Random(77)
        for _ in range(25):
            from .conftest import random_database

            db = random_database(
                rng, [("likes", 2), ("trendy", 1)], constants=("a", "b", "c")
            )
            assert evaluate(buys1, db).facts("buys") <= evaluate_ucq(union, db)


class TestReverseDirection:
    def test_cq_contained_in_datalog(self, tc_program):
        # A 3-step path query is contained in transitive closure.
        theta = cq("p(X, Y)", "e(X, A)", "e(A, B)", "e0(B, Y)")
        assert cq_contained_in_datalog(theta, tc_program, "p")
        # But a disconnected query is not.
        theta2 = cq("p(X, Y)", "e(X, A)", "e0(B, Y)")
        assert not cq_contained_in_datalog(theta2, tc_program, "p")

    def test_ucq_contained_in_datalog(self, tc_program):
        union = expansion_union(tc_program, "p", 3)
        assert ucq_contained_in_datalog(union, tc_program, "p")

    def test_nonrecursive_contained_in_datalog(self, buys1, buys1_nr):
        assert nonrecursive_contained_in_datalog(buys1_nr, "buys", buys1, "buys")

    def test_unsafe_query_rejected(self, tc_program):
        with pytest.raises(ValidationError):
            cq_contained_in_datalog(cq("p(X, W)", "e0(X, X)"), tc_program, "p")

    def test_contained_in_nonrecursive_wrapper(self, buys1, buys1_nr, buys2, buys2_nr):
        assert contained_in_nonrecursive(buys1, "buys", buys1_nr).contained
        assert not contained_in_nonrecursive(buys2, "buys", buys2_nr).contained
