"""Proof-tree tests (Section 5.1): var(Pi), connectedness
(Definition 5.2, Example 5.3), distinguished occurrences, and the
proof-tree <-> expansion-tree round trip (Propositions 5.5/5.6)."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.trees.expansion import ExpansionTree
from repro.trees.proof import (
    OccurrenceClasses,
    is_proof_tree,
    proof_tree_to_expansion_tree,
    proof_trees,
    root_atoms,
    term_space,
    var_space,
    varnum,
)


@pytest.fixture
def figure2_proof_tree(tc_program):
    """The proof tree of Figure 2(b): the interior node reuses X where
    the unfolding expansion tree would use a fresh W.

    root:     (p(X, Y), p(X, Y) :- e(X, Z), p(Z, Y))
    interior: (p(Z, Y), p(Z, Y) :- e(Z, X), p(X, Y))
    leaf:     (p(X, Y), p(X, Y) :- e0(X, Y))
    """
    v = {name: Variable(f"_pv{i}") for i, name in enumerate("XYZ")}
    x, y, z = v["X"], v["Y"], v["Z"]
    root_rule = Rule(Atom("p", (x, y)), (Atom("e", (x, z)), Atom("p", (z, y))))
    interior_rule = Rule(Atom("p", (z, y)), (Atom("e", (z, x)), Atom("p", (x, y))))
    leaf_rule = Rule(Atom("p", (x, y)), (Atom("e0", (x, y)),))
    leaf = ExpansionTree(leaf_rule.head, leaf_rule)
    interior = ExpansionTree(interior_rule.head, interior_rule, (leaf,))
    return ExpansionTree(root_rule.head, root_rule, (interior,))


class TestVarSpace:
    def test_varnum_tc(self, tc_program):
        # Both rules have 3 variables; varnum = 2 * 3.
        assert varnum(tc_program) == 6
        assert len(var_space(tc_program)) == 6

    def test_term_space_includes_constants(self):
        program = parse_program("p(X) :- e(X, c0), p(X).\np(X) :- b(X).")
        space = term_space(program)
        from repro.datalog.terms import Constant

        assert Constant("c0") in space

    def test_root_atoms_count(self, tc_program):
        assert len(list(root_atoms(tc_program, "p"))) == 36  # 6^2

    def test_is_proof_tree(self, figure2_proof_tree, tc_program):
        assert is_proof_tree(figure2_proof_tree, tc_program)


class TestEnumeration:
    def test_counts_height1(self, tc_program):
        # Height-1 trees: instances of the base rule over var(Pi):
        # 36 head atoms, one tree each.
        trees = list(proof_trees(tc_program, "p", 1))
        assert len(trees) == 36

    def test_counts_height2(self, tc_program):
        # 36 roots x 6 choices of Z x (1 leaf) + the 36 height-1 trees.
        trees = list(proof_trees(tc_program, "p", 2))
        assert len(trees) == 36 * 6 + 36

    def test_root_args_filter(self, tc_program):
        space = var_space(tc_program)
        trees = list(proof_trees(tc_program, "p", 2, root_args=(space[0], space[1])))
        assert all(t.atom == Atom("p", (space[0], space[1])) for t in trees)

    def test_all_are_proof_trees(self, tc_program):
        for tree in proof_trees(tc_program, "p", 2):
            assert is_proof_tree(tree, tc_program)
            tree.validate(tc_program)


class TestConnectedness:
    def test_example_5_3(self, figure2_proof_tree):
        # Example 5.3: Y occurrences in root and interior are connected
        # and distinguished; X in root and leaf are NOT connected; the
        # leaf X is not distinguished while the root X is.
        classes = OccurrenceClasses(figure2_proof_tree)
        x, y = Variable("_pv0"), Variable("_pv1")
        assert classes.connected(((), y), ((0,), y))
        assert classes.connected(((), y), ((0, 0), y))
        assert not classes.connected(((), x), ((0, 0), x))
        assert classes.is_distinguished((), x)
        assert classes.is_distinguished((0,), y)
        assert classes.is_distinguished((0, 0), y)
        assert not classes.is_distinguished((0, 0), x)
        # The interior X and the leaf X ARE connected (X is in the
        # leaf's goal), just not to the root.
        assert classes.connected(((0,), x), ((0, 0), x))

    def test_same_node_occurrences_connected(self, figure2_proof_tree):
        classes = OccurrenceClasses(figure2_proof_tree)
        z = Variable("_pv2")
        # Z occurs in both atoms of the root rule: one class.
        assert classes.connected(((), z), ((), z))

    def test_classes_partition(self, figure2_proof_tree):
        classes = OccurrenceClasses(figure2_proof_tree)
        all_occurrences = [occ for members in classes.classes().values() for occ in members]
        assert len(all_occurrences) == len(set(all_occurrences))

    def test_unknown_occurrence_raises(self, figure2_proof_tree):
        from repro.datalog.errors import ValidationError

        classes = OccurrenceClasses(figure2_proof_tree)
        with pytest.raises(ValidationError):
            classes.class_of((), Variable("_pv5"))


class TestRenaming:
    def test_proposition_5_5_renaming(self, figure2_proof_tree, tc_program):
        expansion = proof_tree_to_expansion_tree(figure2_proof_tree)
        expansion.validate(tc_program)
        # The root atom is unchanged (distinguished classes keep names).
        assert expansion.atom == figure2_proof_tree.atom
        # The reused X below the root got a fresh name (it is a
        # different connectedness class from the root's X).
        leaf = expansion.children[0].children[0]
        assert leaf.atom.args[0] != Variable("_pv0")
        # ... and Y survives everywhere (distinguished class).
        assert leaf.atom.args[1] == Variable("_pv1")

    def test_renaming_preserves_query_semantics(self, tc_program):
        # The renamed tree's query and the proof tree's query must be
        # equivalent *as queries of the underlying expansion*: the
        # proof tree query is the more-constrained variant, so it is
        # contained in the renamed one.
        from repro.cq.containment import cq_contained_in

        for tree in list(proof_trees(tc_program, "p", 2))[:40]:
            renamed = proof_tree_to_expansion_tree(tree)
            assert cq_contained_in(
                tree.to_query(tc_program), renamed.to_query(tc_program)
            )

    def test_connected_classes_get_one_variable(self, figure2_proof_tree):
        renamed = proof_tree_to_expansion_tree(figure2_proof_tree)
        # Y is connected through the whole spine, so every node's
        # second goal argument stays the same variable.
        assert renamed.atom.args[1] == renamed.children[0].atom.args[1]
        assert renamed.atom.args[1] == renamed.children[0].children[0].atom.args[1]
