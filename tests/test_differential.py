"""Randomized differential testing of the containment decision.

For randomly generated small recursive programs and candidate unions:

* whenever the automata procedure answers NO, the witness proof tree
  must be genuine (no strong mapping from any disjunct) and must
  convert into a refuting database;
* whenever it answers YES, no random database may refute it, and the
  brute-force proof-tree sweep (up to a height bound) must agree;
* the word pathway must agree with the tree pathway on chain programs.
"""

import random

import pytest

from repro.core.containment import counterexample_database
from repro.core.tree_containment import datalog_contained_in_ucq
from repro.core.word_path import datalog_contained_in_ucq_linear, is_chain_program
from repro.cq.canonical import evaluate_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.atoms import Atom
from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.datalog.unfold import expansion_union
from repro.trees.strong import brute_force_contained, ucq_covers_proof_tree

from .conftest import random_database

EDB = [("e", 2), ("f", 2), ("g", 1)]


def random_program(rng: random.Random):
    """A small linear recursive program over e/f/g with goal p/2."""
    variables = [Variable(v) for v in ("X", "Y", "Z")]

    def random_edb_atom():
        predicate, arity = rng.choice(EDB)
        return Atom(predicate, tuple(rng.choice(variables) for _ in range(arity)))

    base_body = tuple(random_edb_atom() for _ in range(rng.randint(1, 2)))
    # Ensure safety of the base rule.
    base_body = base_body + (Atom("e", (Variable("X"), Variable("Y"))),)
    recursive_body = (
        random_edb_atom(),
        Atom("p", (rng.choice(variables), Variable("Y"))),
    )
    from repro.datalog.rules import Rule

    rules = [
        Rule(Atom("p", (Variable("X"), Variable("Y"))), base_body),
        Rule(Atom("p", (Variable("X"), Variable("Y"))), recursive_body),
    ]
    from repro.datalog.program import Program

    return Program(rules)


def random_union(rng: random.Random, program) -> UnionOfConjunctiveQueries:
    """Either a truncation union (possibly contained) or random CQs."""
    if rng.random() < 0.5:
        return expansion_union(program, "p", rng.randint(1, 2))
    variables = [Variable(v) for v in ("X0", "X1", "A", "B")]
    disjuncts = []
    for _ in range(rng.randint(1, 3)):
        body = []
        for _ in range(rng.randint(1, 2)):
            predicate, arity = rng.choice(EDB)
            body.append(
                Atom(predicate, tuple(rng.choice(variables) for _ in range(arity)))
            )
        disjuncts.append(
            ConjunctiveQuery(Atom("p", (Variable("X0"), Variable("X1"))), tuple(body))
        )
    return UnionOfConjunctiveQueries(disjuncts, arity=2)


@pytest.mark.parametrize("seed", range(20))
def test_differential_containment(seed):
    rng = random.Random(seed)
    program = random_program(rng)
    union = random_union(rng, program)

    result = datalog_contained_in_ucq(program, "p", union)

    if not result.contained:
        # The witness is genuine by Theorem 5.8 ...
        assert not ucq_covers_proof_tree(union, result.witness, program)
        # ... and semantically refuting (safe programs only).
        if all(rule.is_safe for rule in program.rules):
            db, row = counterexample_database(result, program)
            assert row in evaluate(program, db).facts("p")
            assert row not in evaluate_ucq(union, db)
    else:
        # Brute force over proof trees up to height 3 must agree.
        ok, _ = brute_force_contained(program, "p", union, max_height=2)
        assert ok
        # No random database refutes the containment.
        for _ in range(10):
            db = random_database(rng, EDB, constants=("a", "b", "c"))
            assert evaluate(program, db).facts("p") <= evaluate_ucq(union, db)

    if is_chain_program(program):
        word = datalog_contained_in_ucq_linear(program, "p", union)
        assert word.contained == result.contained
