"""The compiled join-plan engine (repro.datalog.plan).

Differential coverage against the interpretive reference path on the
library programs (including unsafe / empty-body rules and the
stage-bounded semantics), plan-compiler unit checks, and
index-maintenance tests for both stores' ``add_all``.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import (
    Engine,
    EngineConfig,
    _Store,
    evaluate,
    naive_evaluate,
    query,
    seminaive_evaluate,
)
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_program
from repro.datalog.plan import JoinPlan, PlanCache, PlanStore, compile_program
from repro.datalog.terms import Constant
from repro.programs import library as lib

from .conftest import random_graph_database

COMPILED = Engine(EngineConfig(compiled=True))
INTERPRETIVE = Engine(EngineConfig(compiled=False))


def labeled_graph(seed: int = 3, nodes: int = 5) -> Database:
    rng = random.Random(seed)
    db = random_graph_database(rng, nodes=nodes)
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        db.add("e0", (name, names[(names.index(name) + 1) % nodes]))
        db.add("zero" if rng.random() < 0.5 else "one", (name,))
        db.add("flat", (name, names[0]))
        db.add("up", (name, names[-1]))
        db.add("down", (names[0], name))
        for j in range(4):
            db.add(f"g{j}", (name, names[(names.index(name) + 1) % nodes]))
    return db


LIBRARY_BUILDERS = [
    lib.buys_bounded, lib.buys_bounded_rewriting, lib.buys_recursive,
    lib.buys_recursive_rewriting, lib.transitive_closure,
    lib.plain_transitive_closure, lambda: lib.dist(3),
    lambda: lib.dist_le(2), lambda: lib.equal(2), lambda: lib.word(3),
    lambda: lib.chain_program(4), lib.nonlinear_reach, lib.same_generation,
    lib.widget_supply_chain, lib.widget_certified,
    lib.widget_certified_rewriting,
]


def database_for(program) -> Database:
    db = labeled_graph()
    # Give every EDB predicate of the program at least some rows over
    # the same constants so no join is trivially empty.
    names = [f"n{i}" for i in range(5)]
    for predicate in sorted(program.edb_predicates):
        if predicate not in db.predicates():
            arity = program.arity[predicate]
            for i in range(4):
                db.add(predicate,
                       tuple(names[(i + k) % len(names)] for k in range(arity)))
    return db


class TestDifferential:
    @pytest.mark.parametrize("builder", LIBRARY_BUILDERS,
                             ids=lambda b: getattr(b, "__name__", "param"))
    @pytest.mark.parametrize("max_stages", [None, 0, 1, 3])
    def test_bit_identical_on_library(self, builder, max_stages):
        program = builder()
        db = database_for(program)
        compiled = COMPILED.evaluate(program, db, max_stages=max_stages)
        interpretive = INTERPRETIVE.evaluate(program, db, max_stages=max_stages)
        assert compiled.idb == interpretive.idb
        assert compiled.stages == interpretive.stages
        assert compiled.fixpoint == interpretive.fixpoint

    @pytest.mark.parametrize("interning", [True, False])
    @pytest.mark.parametrize("indexing", [True, False])
    def test_config_ablations_agree(self, interning, indexing):
        program = lib.plain_transitive_closure()
        db = labeled_graph(seed=11)
        engine = Engine(EngineConfig(interning=interning, indexing=indexing))
        assert (engine.evaluate(program, db).idb
                == INTERPRETIVE.evaluate(program, db).idb)

    def test_unsafe_and_empty_body_rules(self):
        # dist_le carries the paper's empty-body rules dist0(X, X) :- .
        program = lib.dist_le(2)
        db = labeled_graph(seed=5)
        compiled = COMPILED.evaluate(program, db)
        interpretive = INTERPRETIVE.evaluate(program, db)
        assert compiled.idb == interpretive.idb
        # Unsafe head variables range over the whole active domain.
        assert compiled.facts("distlt0")

    def test_unsafe_rule_with_program_constant(self):
        program = parse_program(
            """
            marked(X, Y) :- tag(c, Y).
            tag(c, X) :- .
            """
        )
        db = Database.from_facts([("seen", ("a",)), ("seen", ("b",))])
        compiled = COMPILED.evaluate(program, db)
        interpretive = INTERPRETIVE.evaluate(program, db)
        assert compiled.idb == interpretive.idb
        # 'c' enters the active domain from the program itself.
        values = {c.value for row in compiled.facts("tag") for c in row}
        assert "c" in values

    def test_empty_database_unsafe_rule_derives_nothing(self):
        program = parse_program("p(X) :- .")
        result = COMPILED.evaluate(program, Database())
        assert result.facts("p") == frozenset()
        assert result.idb == INTERPRETIVE.evaluate(program, Database()).idb

    def test_repeated_variables_and_constants(self):
        program = parse_program(
            """
            loop(X) :- e(X, X).
            to_hub(X) :- e(X, hub).
            pair(X, X) :- e(X, Y), e(Y, X).
            """
        )
        db = Database.from_facts([
            ("e", ("a", "a")), ("e", ("a", "hub")), ("e", ("hub", "a")),
            ("e", ("b", "c")), ("e", ("c", "b")),
        ])
        compiled = COMPILED.evaluate(program, db)
        interpretive = INTERPRETIVE.evaluate(program, db)
        assert compiled.idb == interpretive.idb
        assert compiled.facts("loop") == frozenset({(Constant("a"),)})

    def test_module_level_evaluate_routes_compiled(self, tc_program):
        db = labeled_graph(seed=9)
        default = evaluate(tc_program, db)
        forced = evaluate(tc_program, db, engine=INTERPRETIVE)
        assert default.idb == forced.idb
        assert (query(tc_program, db, "p")
                == query(tc_program, db, "p", engine=INTERPRETIVE))


class TestPlanCompiler:
    def test_plan_compiles_once_per_rule_and_variant(self, tc_program):
        cache = PlanCache()
        rule = tc_program.rules[0]
        assert cache.plan(rule, None) is cache.plan(rule, None)
        assert cache.plan(rule, 1) is cache.plan(rule, 1)
        assert cache.plan(rule, None) is not cache.plan(rule, 1)

    def test_compile_program_covers_all_rules(self, tc_program):
        plans = compile_program(tc_program)
        assert set(plans) == set(tc_program.rules)

    def test_head_projection_and_registers(self):
        program = parse_program("p(Y, X, k) :- e(X, Y).")
        plan = JoinPlan(program.rules[0])
        assert plan.nregs == 2
        assert len(plan.head_ops) == 3
        is_regs = [is_reg for is_reg, _ in plan.head_ops]
        assert is_regs == [True, True, False]
        assert plan.unsafe_regs == ()

    def test_unsafe_head_variables_detected(self):
        program = parse_program("p(X, Y) :- e(X, X).")
        plan = JoinPlan(program.rules[0])
        assert len(plan.unsafe_regs) == 1

    def test_delta_variant_marks_delta_step(self, tc_program):
        recursive = tc_program.rules[0]  # p(X,Y) :- e(X,Z), p(Z,Y).
        plan = JoinPlan(recursive, delta_index=1)
        delta_flags = [use_delta for _, use_delta, _, _ in plan.steps]
        assert delta_flags.count(True) == 1
        predicate = [s[0] for s in plan.steps if s[1]][0]
        assert predicate == "p"

    def test_bound_prefix_gets_index_spec(self, tc_program):
        plan = JoinPlan(tc_program.rules[0])
        # The second step joins on a variable bound by the first, so it
        # must carry an index spec.
        assert plan.steps[1][2] is not None

    def test_engine_rejects_unknown_strategy(self):
        with pytest.raises(ValidationError):
            EngineConfig(strategy="bogus")


class TestStoreIndexMaintenance:
    def test_interpretive_store_add_all_maintains_indexes(self):
        db = Database.from_facts([("e", ("a", "b"))])
        store = _Store(db)
        a, b, c = Constant("a"), Constant("b"), Constant("c")
        # Force the lazy index into existence, then insert more rows.
        assert store.candidates("e", 0, a) == {(a, b)}
        fresh = store.add_all("e", {(a, c), (a, b)})
        assert fresh == {(a, c)}
        assert store.candidates("e", 0, a) == {(a, b), (a, c)}
        # Rows for other predicates never leak into the index.
        store.add_all("f", {(a, b)})
        assert store.candidates("e", 0, a) == {(a, b), (a, c)}

    def test_plan_store_add_all_maintains_registered_indexes(self):
        db = Database.from_facts([("e", ("a", "b"))])
        store = PlanStore(db, interning=True, indexing=True)
        store.require_index("e", 0)
        a = store.resolve(Constant("a"))
        b = store.resolve(Constant("b"))
        c = store.resolve(Constant("c"))
        assert store.candidates("e", 0, a) == {(a, b)}
        fresh = store.add_all("e", {(a, c), (a, b)})
        assert fresh == {(a, c)}
        assert store.candidates("e", 0, a) == {(a, b), (a, c)}
        assert store.rows("e") == {(a, b), (a, c)}

    def test_plan_store_interning_round_trip(self):
        db = Database.from_facts([("e", ("a", 1)), ("e", ("b", 2))])
        store = PlanStore(db)
        rows = store.unintern_rows("e")
        assert rows == frozenset({
            (Constant("a"), Constant(1)), (Constant("b"), Constant(2)),
        })
        # Interned values are small ints.
        assert all(isinstance(v, int) for row in store.rows("e") for v in row)

    def test_plan_store_domain_tracks_inserts_and_constants(self):
        db = Database.from_facts([("e", ("a", "b"))])
        store = PlanStore(db)
        before = len(store.domain())
        store.resolve(Constant("k"))
        store.add_all("e", {(0, 1)})  # already-known values
        assert len(store.domain()) == before + 1

    def test_add_all_returns_only_new_rows(self):
        db = Database.from_facts([("e", ("a", "b"))])
        store = PlanStore(db)
        row = next(iter(store.rows("e")))
        assert store.add_all("e", {row}) == set()
