"""The resilient execution layer: error taxonomy, deterministic
chaos, the degradation ladder, supervised pools, and universal
deadlines (:mod:`repro.resilience` plus the runner integration).

Every fault is planted deterministically through a
:class:`~repro.resilience.ChaosSchedule`, so each test asserts an
exact recovery outcome: the batch completes, the retried verdict is
bit-identical to a clean run, or the job is quarantined with the
right category and attempt count.  Pool tests keep the matrix tiny --
this suite must stay fast on single-core CI runners.
"""

import json
import signal
import threading
import time
import warnings

import pytest

from repro.budget import (
    BudgetEnforcementWarning,
    BudgetExhausted,
    UnenforceableBudgetError,
    budgets_enforceable,
    check_deadline,
    time_budget,
)
from repro.resilience import (
    ENGINE_CHAIN,
    ERROR_CATEGORIES,
    KERNEL_CHAIN,
    ChaosSchedule,
    Fault,
    PayloadCorruption,
    ResilienceConfig,
    RetryPolicy,
    SimulatedWorkerCrash,
    classify_failure,
    ladder_rungs,
    parse_schedule,
    rung_label,
)
from repro.resilience import chaos
from repro.runner import __main__ as runner_cli
from repro.runner.batch import (
    Job,
    _worker_init,
    build_jobs,
    quarantine_decision,
    run_batch,
    run_shard,
    verdicts,
)
from repro.session import Session
from repro.datalog.parser import parse_program

# One decision + one containment scenario: small enough for repeated
# pool spawns, rich enough to cover both decision-kind ladder axes.
SMALL = ["bounded_buys", "contain_tc_trunc2"]


def small_jobs(kernels=("bitset", "frozenset"), scenarios=SMALL):
    return build_jobs(scenarios, engines=("compiled",), kernels=kernels)


# ----------------------------------------------------------------------
# Error taxonomy.
# ----------------------------------------------------------------------

def test_error_taxonomy():
    assert classify_failure(BudgetExhausted(1.5)) == "timeout"
    assert classify_failure(MemoryError()) == "memory"
    assert classify_failure(SimulatedWorkerCrash()) == "crash"
    assert classify_failure(PayloadCorruption()) == "corrupt"
    assert classify_failure(ValueError("boom")) == "error"
    # Every category the classifier can emit is in the summary order.
    for exc in (BudgetExhausted(1.0), MemoryError(),
                SimulatedWorkerCrash(), PayloadCorruption(), OSError()):
        assert classify_failure(exc) in ERROR_CATEGORIES


# ----------------------------------------------------------------------
# Chaos schedules.
# ----------------------------------------------------------------------

def test_fault_matching():
    fault = Fault("memory", scenario="bounded_buys", attempt=2)
    assert fault.matches("bounded_buys", nth=7, attempt=2)
    assert not fault.matches("bounded_buys", nth=7, attempt=1)
    assert not fault.matches("other", nth=7, attempt=2)
    wildcard = Fault("crash", attempt=None, nth=3)
    assert wildcard.matches("anything", nth=3, attempt=9)
    assert not wildcard.matches("anything", nth=4, attempt=9)
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("gremlin")


def test_schedule_spec_round_trips():
    spec = ("crash:scenario=eval_sg_tree_d5,attempt=1;"
            "hang:nth=3,attempt=*,seconds=5;memory:attempt=2")
    schedule = parse_schedule(spec)
    assert [f.kind for f in schedule.faults] == ["crash", "hang", "memory"]
    assert schedule.faults[1].attempt is None  # the wildcard
    assert parse_schedule(schedule.spec()) == schedule
    assert not parse_schedule("")  # empty schedule is falsy


def test_schedule_from_env(monkeypatch):
    monkeypatch.setenv(chaos.CHAOS_ENV, "memory:scenario=x,attempt=1")
    assert chaos.from_env().faults[0].kind == "memory"
    monkeypatch.delenv(chaos.CHAOS_ENV)
    assert not chaos.from_env()


def test_inject_raises_taxonomy_faults():
    schedule = parse_schedule("memory:scenario=a;corrupt:scenario=b;"
                              "crash:scenario=c")
    with pytest.raises(MemoryError):
        chaos.inject("a", nth=0, attempt=1, schedule=schedule)
    with pytest.raises(PayloadCorruption):
        chaos.inject("b", nth=0, attempt=1, schedule=schedule)
    # Outside a pool worker a crash is simulated, not a real exit.
    with pytest.raises(SimulatedWorkerCrash):
        chaos.inject("c", nth=0, attempt=1, schedule=schedule)
    chaos.inject("unmatched", nth=0, attempt=1, schedule=schedule)


def test_hang_fault_is_cut_by_the_deadline():
    schedule = ChaosSchedule((Fault("hang", scenario="h", seconds=30.0),))
    start = time.perf_counter()
    with pytest.raises(BudgetExhausted):
        with time_budget(0.2):
            chaos.inject("h", nth=0, attempt=1, schedule=schedule)
    assert time.perf_counter() - start < 10.0


# ----------------------------------------------------------------------
# The degradation ladder.
# ----------------------------------------------------------------------

def test_ladder_rungs_axes():
    # Decision kinds degrade the kernel axis from their own position.
    assert ladder_rungs("compiled", "bitset", decision=True) == [
        ("compiled", "bitset"), ("compiled", "frozenset")]
    assert ladder_rungs("compiled", "frozenset", decision=True) == [
        ("compiled", "frozenset")]
    # Evaluation kinds degrade the engine axis.
    assert ladder_rungs("columnar", "bitset", decision=False) == [
        ("columnar", "bitset"), ("compiled", "bitset"),
        ("interpretive", "bitset")]
    # Unknown labels degrade nowhere: retry in place.
    assert ladder_rungs("custom", "bitset", decision=False) == [
        ("custom", "bitset")]
    assert rung_label("compiled", "bitset") == "compiled/bitset"
    assert ENGINE_CHAIN[0] == "columnar" and KERNEL_CHAIN[-1] == "frozenset"


def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base_s=0.05, backoff_max_s=2.0)
    key = "bounded_buys/compiled/bitset/warm"
    assert policy.backoff(key, 0) == 0.0
    series = [policy.backoff(key, n) for n in range(1, 8)]
    assert series == [policy.backoff(key, n) for n in range(1, 8)]
    assert all(0.0 < s <= 2.0 for s in series)
    # Different jobs jitter differently (same failure count).
    assert policy.backoff(key, 1) != policy.backoff("other/job", 1)


# ----------------------------------------------------------------------
# Budgets off the main thread (the loud-degradation satellite).
# ----------------------------------------------------------------------

def _in_thread(fn):
    box = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            box["error"] = exc

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive(), "worker thread wedged"
    if "error" in box:
        raise box["error"]
    return box.get("result")


def test_budget_off_main_thread_warns_loudly():
    def body():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with time_budget(5.0):
                pass
        return caught

    caught = _in_thread(body)
    assert any(issubclass(w.category, BudgetEnforcementWarning)
               for w in caught)
    assert "cooperatively" in str(caught[0].message)


def test_budget_off_main_thread_strict_raises():
    def body():
        with time_budget(5.0, strict=True):
            pass

    with pytest.raises(UnenforceableBudgetError):
        _in_thread(body)


def test_cooperative_deadline_fires_off_main_thread():
    def body():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BudgetEnforcementWarning)
            with time_budget(0.1):
                while True:
                    check_deadline()
                    time.sleep(0.005)

    with pytest.raises(BudgetExhausted):
        _in_thread(body)


def test_session_deadline_fires_off_main_thread():
    """``deadline=`` on a Session decision is honored where SIGALRM
    cannot reach: the instrumented antichain loops hit the
    cooperative hook."""
    program = parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), buys(Z, Y).
        """
    )

    def body():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BudgetEnforcementWarning)
            Session().bounded(program, "buys", deadline=1e-6)

    with pytest.raises(BudgetExhausted):
        _in_thread(body)


# ----------------------------------------------------------------------
# Serial resilience: retry, ladder, quarantine.
# ----------------------------------------------------------------------

def test_memory_fault_recovers_on_a_degraded_rung():
    jobs = small_jobs(kernels=("bitset",), scenarios=["bounded_buys"])
    config = ResilienceConfig(chaos=parse_schedule(
        "memory:scenario=bounded_buys,attempt=1"))
    clean = run_shard(jobs)
    [decision] = run_shard(jobs, resilience=config)
    assert decision.ok is True
    assert decision.attempts == 2
    assert decision.degraded_to == "compiled/frozenset"
    assert decision["verdict"] == clean[0]["verdict"]
    assert any("memory" in entry
               for entry in decision.stats["retried_after"])
    # The record survives a JSON round-trip with the new fields.
    record = json.loads(json.dumps(decision.record()))
    assert record["attempts"] == 2
    assert record["degraded_to"] == "compiled/frozenset"
    assert "error" not in record


def test_wildcard_crash_quarantines_after_max_attempts():
    jobs = small_jobs(kernels=("bitset",), scenarios=["bounded_buys"])
    config = ResilienceConfig(max_attempts=3, backoff_base_s=0.001,
                              chaos=parse_schedule(
                                  "crash:scenario=bounded_buys,attempt=*"))
    [decision] = run_shard(jobs, resilience=config)
    assert decision.error == "crash"
    assert decision.attempts == 3
    assert decision.ok is None
    assert not decision  # error decisions are falsy
    record = json.loads(json.dumps(decision.record()))
    assert record["verdict"] == {"error": "crash"}
    assert record["error"] == "crash" and record["attempts"] == 3


def test_hang_fault_is_bounded_and_recovered_serially():
    jobs = small_jobs(kernels=("bitset",), scenarios=["bounded_buys"])
    config = ResilienceConfig(deadline_s=0.3, backoff_base_s=0.001,
                              chaos=parse_schedule(
                                  "hang:scenario=bounded_buys,attempt=1,"
                                  "seconds=30"))
    start = time.perf_counter()
    [decision] = run_shard(jobs, resilience=config)
    wall = time.perf_counter() - start
    assert wall < 10.0, f"hang was not cut by the deadline ({wall:.1f}s)"
    assert decision.ok is True and decision.attempts == 2
    assert any("timeout" in entry
               for entry in decision.stats["retried_after"])


def test_quarantine_decision_shape():
    decision = quarantine_decision(
        Job("bounded_buys", "compiled", "bitset", "warm"),
        attempts=3, category="crash", message="worker died")
    record = json.loads(json.dumps(decision.record()))
    assert record["kind"] == "boundedness"
    assert record["ok"] is None
    assert record["scenario"] == "bounded_buys"
    assert record["stats"]["failure"] == "worker died"


# ----------------------------------------------------------------------
# The supervised pool (real worker death).
# ----------------------------------------------------------------------

def test_pool_crash_mid_shard_completes_and_matches_serial():
    """A worker really dying (``os._exit``) mid-batch must not abort
    the run -- and the recovered verdicts must be bit-identical to a
    clean serial execution."""
    jobs = small_jobs(kernels=("bitset",))
    clean = run_batch(jobs, workers=1)
    config = ResilienceConfig(backoff_base_s=0.001,
                              chaos=parse_schedule(
                                  "crash:scenario=bounded_buys,attempt=1"))
    recovered = run_batch(jobs, workers=2, resilience=config)
    assert verdicts(recovered) == verdicts(clean)
    assert all(r["ok"] for r in recovered)
    by_scenario = {r["scenario"]: r for r in recovered}
    assert by_scenario["bounded_buys"]["attempts"] >= 2
    assert "degraded_to" not in by_scenario["bounded_buys"]


def test_pool_wildcard_crash_quarantines_without_charging_neighbors():
    jobs = small_jobs(kernels=("bitset",))
    config = ResilienceConfig(max_attempts=2, backoff_base_s=0.001,
                              chaos=parse_schedule(
                                  "crash:scenario=bounded_buys,attempt=*"))
    results = run_batch(jobs, workers=2, resilience=config)
    by_scenario = {r["scenario"]: r for r in results}
    poisoned = by_scenario["bounded_buys"]
    assert poisoned["error"] == "crash"
    assert poisoned["attempts"] == 2
    # The innocent scenario answered normally.
    assert by_scenario["contain_tc_trunc2"]["ok"] is True
    assert "error" not in by_scenario["contain_tc_trunc2"]


def test_worker_init_disarms_stale_itimer():
    """The respawn bugfix: a worker inheriting a dying incarnation's
    armed itimer must disarm it before its first job."""
    if not budgets_enforceable():
        pytest.skip("needs the main thread + setitimer")
    was_worker = chaos.in_worker()
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        _worker_init()
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        assert chaos.in_worker()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        chaos._IN_WORKER = was_worker  # don't leak worker-mode into
        # later tests: a planted crash would then really exit pytest.


# ----------------------------------------------------------------------
# CLI integration: exit codes, summary table, quarantine artifact.
# ----------------------------------------------------------------------

def test_cli_recovers_and_exits_zero(capsys):
    code = runner_cli.main([
        "--scenarios", "bounded_buys", "--engines", "compiled",
        "--kernels", "bitset", "--no-write",
        "--chaos", "memory:scenario=bounded_buys,attempt=1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "attempts=2" in out and "degraded_to=compiled/frozenset" in out
    assert "error summary:" in out and "answered degraded: 1" in out


def test_cli_quarantine_exits_two_and_writes_artifact(tmp_path, capsys):
    artifact = tmp_path / "quarantine.json"
    code = runner_cli.main([
        "--scenarios", "bounded_buys", "--engines", "compiled",
        "--kernels", "bitset", "--no-write", "--max-attempts", "2",
        "--chaos", "crash:scenario=bounded_buys,attempt=*",
        "--quarantine-out", str(artifact)])
    out = capsys.readouterr().out
    assert code == 2
    assert "QUAR" in out and "crash" in out
    [record] = json.loads(artifact.read_text())
    assert record["error"] == "crash" and record["attempts"] == 2


# ----------------------------------------------------------------------
# Fuzz chaos mode.
# ----------------------------------------------------------------------

def test_fuzz_chaos_mode_recovers_every_planted_fault():
    from repro.fuzz import planted_fault, run_fuzz

    expected = sum(
        planted_fault(7, 3, index, "case") is not None for index in range(9))
    assert expected >= 1  # the chaos draw really plants something
    report = run_fuzz(seed=3, iterations=9, matrix="quick", shrink=False,
                      chaos_seed=7)
    assert report.ok
    assert report.faults_injected == expected
    assert report.faults_recovered == report.faults_injected
    # Chaos changes no verdicts: a clean sweep of the same seed agrees.
    assert run_fuzz(seed=3, iterations=9, matrix="quick",
                    shrink=False).divergences == report.divergences == []
