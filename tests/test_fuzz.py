"""The differential fuzz subsystem: determinism, the sweep, the
shrinker, and the regression round-trip.

The planted-divergence test is the subsystem's own acceptance check: a
mutator corrupts one backend's verdicts, the sweep must catch it, the
shrinker must reduce the failing case to a handful of rules, and the
emitted file must (a) replay green through the unmutated matrix and
(b) round-trip into the scenario registry as a passing scenario.
"""

import json

import pytest

from repro.fuzz import (
    EVAL_MATRIX,
    EVAL_MATRIX_QUICK,
    KIND_ROTATION,
    analysis_divergences,
    ddmin,
    default_regressions_dir,
    draw_case,
    load_regression,
    register_regressions,
    run_case,
    run_fuzz,
)
from repro.workloads.scenarios import REGISTRY, get_scenario, run_scenario


# ----------------------------------------------------------------------
# Drawing.
# ----------------------------------------------------------------------

def test_draws_are_deterministic():
    for index in range(12):
        first, second = draw_case(3, index), draw_case(3, index)
        assert first.program == second.program
        assert first.kind == second.kind == KIND_ROTATION[index % 6]
        assert first.expected == second.expected
        assert first.meta == second.meta
        if first.database is not None:
            assert first.database == second.database


def test_draws_vary_with_seed_and_index():
    programs = {str(draw_case(seed, index).program)
                for seed in range(3) for index in range(6)}
    assert len(programs) > 6  # not one degenerate draw repeated


def test_matrix_shapes():
    assert set(EVAL_MATRIX_QUICK) < set(EVAL_MATRIX)
    assert "interpretive-naive" in EVAL_MATRIX_QUICK  # oracle always runs


# ----------------------------------------------------------------------
# Hazard draws and the analyzer soundness differential.
# ----------------------------------------------------------------------

def _hazard_cases(kind, count=6, limit=600):
    cases = []
    for index in range(limit):
        case = draw_case(0, index)
        if case.meta.get("hazard") == kind:
            cases.append(case)
            if len(cases) == count:
                break
    assert cases, f"no {kind!r} hazard drawn in {limit} draws"
    return cases


def test_unsafe_head_hazards_flagged_and_rejected():
    from repro.analysis import safety_errors
    from repro.datalog import Engine, EngineConfig, UnsafeProgramError

    for case in _hazard_cases("unsafe-head"):
        errors = safety_errors(case.program)
        assert any(d.code == "E001" for d in errors)
        with pytest.raises(UnsafeProgramError):
            Engine(EngineConfig(validate=True)).evaluate(case.program,
                                                         case.database)
        # The engines still evaluate it under active-domain semantics
        # without the gate, and the full differential stays green.
        _verdicts, divergences = run_case(case, matrix="quick")
        assert not divergences, [d.describe() for d in divergences]


def test_undefined_goal_hazards_flagged_and_typed():
    from repro.analysis import analyze_program
    from repro.datalog import ValidationError

    for case in _hazard_cases("undefined-goal"):
        goal = case.meta["hazard_goal"]
        assert goal not in case.program.predicates
        report = analyze_program(case.program, goal, plans=False)
        assert "E002" in report.codes()
        with pytest.raises(ValidationError):
            case.program.require_goal(goal)
        assert not analysis_divergences(case)


def test_certificate_differential_is_exercised():
    # The H001 check must not be vacuous: certified draws exist, and
    # the search procedure confirms every one of them.
    from repro.analysis import analyze_program

    certified = 0
    for index in range(120):
        case = draw_case(0, index)
        report = analyze_program(case.program, case.goal, plans=False)
        if report.boundedness_certificate() is not None:
            certified += 1
            assert not analysis_divergences(case)
    assert certified > 0


def test_analysis_differential_detects_violations():
    # Plant a false hazard claim: a safe drawn program whose meta says
    # "unsafe-head" must trip the hazard assertion (the differential
    # actually checks, rather than vacuously passing).
    from repro.analysis import safety_errors

    for index in range(60):
        case = draw_case(1, index)
        if case.kind == "evaluation" and not case.meta.get("hazard") \
                and not safety_errors(case.program):
            case.meta["hazard"] = "unsafe-head"
            divergences = analysis_divergences(case)
            assert any(d.label == "hazard-unsafe-head" and
                       d.against == "analyzer" for d in divergences)
            return
    raise AssertionError("no safe evaluation draw found")


# ----------------------------------------------------------------------
# The sweep (green path).
# ----------------------------------------------------------------------

def test_small_sweep_is_green(tmp_path):
    report = run_fuzz(seed=0, iterations=12, out_dir=tmp_path)
    assert report.ok
    assert report.cases_run == 12
    assert set(report.by_kind) == {"evaluation", "containment",
                                   "boundedness", "equivalence"}
    assert not list(tmp_path.iterdir())  # nothing written when green


def test_quick_matrix_sweep_is_green(tmp_path):
    report = run_fuzz(seed=2, iterations=6, matrix="quick",
                      out_dir=tmp_path)
    assert report.ok and report.matrix == "quick"


# ----------------------------------------------------------------------
# The shrinker.
# ----------------------------------------------------------------------

def test_ddmin_finds_minimal_subset():
    calls = []

    def failing(items):
        calls.append(list(items))
        return {3, 11} <= set(items)

    assert sorted(ddmin(list(range(20)), failing)) == [3, 11]
    assert calls  # really probed candidates


def test_ddmin_single_culprit_and_empty():
    assert ddmin(list(range(10)), lambda s: 7 in s) == [7]
    assert ddmin([1, 2], lambda s: True) == []


# ----------------------------------------------------------------------
# Planted divergence: caught, shrunk, persisted, replayed.
# ----------------------------------------------------------------------

def _corrupt_columnar(case, label, verdict):
    """The planted bug: columnar cells report a wrong checksum for a
    non-empty ``p`` (forces the shrinker to keep a derivation alive)."""
    if case.kind == "evaluation" and label.startswith("columnar"):
        p = verdict.get("p")
        if p and p["count"] > 0:
            mutated = dict(verdict)
            mutated["p"] = {"count": p["count"], "checksum": "0badc0de"}
            return mutated
    return verdict


def test_planted_divergence_caught_and_shrunk(tmp_path):
    report = run_fuzz(seed=5, iterations=30, mutate=_corrupt_columnar,
                      out_dir=tmp_path)
    assert not report.ok, "planted corruption was not detected"
    assert report.divergences[0].against == "baseline"

    # Shrunk hard: the acceptance bound is <= 5 rules.
    minimized = report.minimized[0]
    assert len(minimized.program.rules) <= 5
    assert len(report.written) == 1

    # Still diverging under the mutator...
    _verdicts, divergences = run_case(minimized, mutate=_corrupt_columnar)
    assert any(d.against == "baseline" for d in divergences)

    # ...and 1-minimal-ish: it kept only what feeds the corrupted
    # relation (p must stay derivable, so facts cannot all vanish
    # unless a bodiless rule keeps p alive via the active domain).
    replayed = load_regression(report.written[0])
    assert replayed.program == minimized.program

    # The file replays GREEN through the unmutated matrix: the
    # recorded expected verdict is the reference cell's.
    verdicts, divergences = run_case(replayed)
    assert not divergences
    assert verdicts["interpretive-naive"] == replayed.expected

    # And it round-trips into the registry as a passing scenario.
    names = register_regressions(tmp_path)
    assert names == [minimized.name]
    scenario = get_scenario(minimized.name)
    assert "regression" in scenario.tags
    result = run_scenario(scenario)
    assert result["ok"], result["verdict"]

    # Idempotent: a second pass skips the already-registered name.
    assert register_regressions(tmp_path) == []


def test_regression_file_is_self_contained(tmp_path):
    report = run_fuzz(seed=5, iterations=30, mutate=_corrupt_columnar,
                      out_dir=tmp_path)
    record = json.loads(report.written[0].read_text())
    assert record["format"] == 1
    assert record["kind"] == "evaluation"
    assert "program" in record and "expected" in record
    assert record["divergence"]["against"] == "baseline"
    assert record["divergence"]["label"].startswith("columnar")


# ----------------------------------------------------------------------
# Committed regressions: every checked-in file replays green and
# registers.
# ----------------------------------------------------------------------

def _committed_regressions():
    directory = default_regressions_dir()
    return sorted(directory.glob("*.json")) if directory.is_dir() else []


@pytest.mark.parametrize("path", _committed_regressions(),
                         ids=lambda p: p.stem)
def test_committed_regression_replays_green(path):
    case = load_regression(path)
    verdicts, divergences = run_case(case)
    assert not divergences, [d.describe() for d in divergences]
    assert verdicts["interpretive-naive"] == case.expected


def test_committed_regressions_register():
    names = register_regressions()
    # Idempotent against earlier registrations in this process; every
    # committed file's name must end up in the registry either way.
    for path in _committed_regressions():
        name = json.loads(path.read_text())["name"]
        assert name in REGISTRY
        result = run_scenario(get_scenario(name))
        assert result["ok"], (name, result["verdict"])
    assert register_regressions() == []
