"""The batch runner: matrix construction, sharding, parallel equality.

The load-bearing property is **serial/parallel equivalence**: the same
job matrix must yield identical verdicts whether executed in-process
or sharded across a worker pool (any divergence would mean the shared
caches or the sharding leak state into verdicts).
"""

import json
import os

import pytest

from repro.runner import __main__ as runner_cli
from repro.runner.batch import (
    Job,
    build_jobs,
    execute_job,
    run_batch,
    select_scenarios,
    shard_jobs,
    verdicts,
)
from repro.workloads import DECISION_KINDS, REGISTRY, scenario_names

# A small but representative matrix: decision + evaluation + magic
# kinds, paper and generated programs.  Kept light so the parallel
# differential stays fast on single-core CI runners.
SMALL = ["bounded_buys", "contain_tc_trunc2", "contain_chain_w1",
         "equiv_buys_recursive", "eval_sg_tree_d5", "magic_star_8x12"]


def test_build_jobs_matrix_shape():
    jobs = build_jobs(scenario_names(), engines=("compiled", "interpretive"),
                      kernels=("bitset", "frozenset"))
    decision = [n for n in scenario_names()
                if REGISTRY[n].kind in DECISION_KINDS]
    other = [n for n in scenario_names()
             if REGISTRY[n].kind not in DECISION_KINDS]
    # tag:scale / tag:stress evaluation scenarios drop the interpretive
    # engine (one cell instead of two); everything else gets the full
    # cross.
    dropped = [n for n in other if {"scale", "stress"} & set(REGISTRY[n].tags)]
    assert len(jobs) == 2 * len(decision) + 2 * len(other) - len(dropped)
    # Deterministic: building twice gives the same ordered list.
    assert jobs == build_jobs(scenario_names(),
                              engines=("compiled", "interpretive"),
                              kernels=("bitset", "frozenset"))
    assert jobs == sorted(jobs)


def test_build_jobs_validates_labels():
    with pytest.raises(ValueError, match="unknown engine"):
        build_jobs(SMALL, engines=("turbo",))
    with pytest.raises(ValueError, match="unknown kernel"):
        build_jobs(SMALL, kernels=("quantum",))
    with pytest.raises(ValueError, match="unknown cache mode"):
        build_jobs(SMALL, cache="lukewarm")


def test_scale_jobs_skip_interpretive_engine():
    jobs = build_jobs(["scale_chain_2hop_5k"],
                      engines=("compiled", "interpretive"))
    assert [j.engine for j in jobs] == ["compiled"]
    # An explicit interpretive-only request is honored.
    jobs = build_jobs(["scale_chain_2hop_5k"], engines=("interpretive",))
    assert [j.engine for j in jobs] == ["interpretive"]


def test_select_scenarios_specs():
    assert select_scenarios("all") == scenario_names()
    assert select_scenarios("kind:boundedness") == scenario_names(
        kind="boundedness")
    assert select_scenarios("tag:generated") == scenario_names(tag="generated")
    assert select_scenarios("bounded_buys,unbounded_tc") == [
        "bounded_buys", "unbounded_tc"]
    with pytest.raises(KeyError):
        select_scenarios("bounded_buys,not_a_scenario")
    with pytest.raises(ValueError):
        select_scenarios("tag:no_such_tag")


def test_shard_jobs_keeps_scenario_groups_whole():
    jobs = build_jobs(scenario_names())
    shards = shard_jobs(jobs, 4)
    assert sorted(job for shard in shards for job in shard) == jobs
    for shard in shards:
        names = [job.scenario for job in shard]
        # A scenario's jobs are contiguous within exactly one shard.
        assert all(
            not any(job.scenario == name for other in shards
                    if other is not shard for job in other)
            for name in names
        )
    # Deterministic dealing.
    assert shard_jobs(jobs, 4) == shard_jobs(jobs, 4)


def test_execute_job_record_shape():
    record = execute_job(Job("bounded_buys", "compiled", "bitset", "warm"))
    assert record["ok"] is True
    assert record["kind"] == "boundedness"
    assert record["verdict"] == {"bounded": True, "depth": 2}
    assert record["seconds"] > 0
    json.dumps(record)  # trajectory-serializable


def test_cold_jobs_match_warm_jobs():
    warm = run_batch(build_jobs(SMALL, cache="warm"), workers=1)
    cold = run_batch(build_jobs(SMALL, cache="cold"), workers=1)
    assert [r["verdict"] for r in warm] == [r["verdict"] for r in cold]
    assert all(r["ok"] for r in warm + cold)


def test_parallel_matches_serial():
    """The acceptance property: identical verdicts, in identical order,
    serial vs sharded across processes."""
    jobs = build_jobs(SMALL, engines=("compiled",),
                      kernels=("bitset", "frozenset"))
    serial = run_batch(jobs, workers=1)
    parallel = run_batch(jobs, workers=2)
    assert verdicts(serial) == verdicts(parallel)
    assert all(r["ok"] for r in parallel)
    # The pool really ran in other processes.
    assert any(r["pid"] != os.getpid() for r in parallel)


def test_parallel_speedup_on_multicore():
    """Every runner checks serial/parallel verdict equality on a
    two-engine matrix; the wall-clock speedup assertion then runs only
    where it can be trusted (>= 4 real cores), with an explicit skip
    reason elsewhere.  On 1-core containers this test used to be
    silently skipped wholesale -- now the correctness half always runs.
    """
    import time

    jobs = build_jobs(SMALL, engines=("compiled", "interpretive"),
                      kernels=("bitset", "frozenset"))
    serial = run_batch(jobs, workers=1)
    parallel = run_batch(jobs, workers=2)
    assert verdicts(serial) == verdicts(parallel)
    assert all(r["ok"] for r in serial + parallel)

    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"speedup timing needs >=4 real cores, have {cores}: "
                    "with fewer cores (or a loaded runner) the wall-clock "
                    "assertion is flaky; serial/parallel verdict equality "
                    "was still asserted above on this machine")

    # tag:scale scenarios are 10^5-fact EDBs -- minutes each on the
    # interpretive engine -- and tag:stress members are seconds-scale
    # even compiled, so the wall-clock matrix excludes both tiers.
    names = [n for n in scenario_names()
             if not {"scale", "stress"} & set(REGISTRY[n].tags)]
    jobs = build_jobs(names, engines=("compiled", "interpretive"),
                      kernels=("bitset", "frozenset"))
    start = time.perf_counter()
    serial = run_batch(jobs, workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_batch(jobs, workers=4)
    parallel_wall = time.perf_counter() - start
    assert verdicts(serial) == verdicts(parallel)
    # Measurable speedup: generous slack for pool startup and load.
    assert parallel_wall < serial_wall * 0.9, (serial_wall, parallel_wall)


def test_cli_list(capsys):
    assert runner_cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "bounded_buys" in out and "boundedness" in out


def test_cli_small_matrix(capsys):
    code = runner_cli.main(["--scenarios", "bounded_buys,contain_tc_trunc2",
                            "--kernels", "both", "--workers", "1",
                            "--no-write"])
    out = capsys.readouterr().out
    assert code == 0
    assert "4 jobs" in out
    assert "FAIL" not in out


def test_cli_writes_trajectories(tmp_path, capsys):
    code = runner_cli.main(["--scenarios", "bounded_buys,eval_sg_tree_d5",
                            "--workers", "1", "--out", str(tmp_path)])
    assert code == 0
    capsys.readouterr()
    automata = json.loads((tmp_path / "BENCH_automata.json").read_text())
    plans = json.loads((tmp_path / "BENCH_plans.json").read_text())
    assert automata[-1]["entries"][0]["scenario"] == "bounded_buys"
    assert {e["scenario"] for e in plans[-1]["entries"]} == {"eval_sg_tree_d5"}
    assert automata[-1]["runner"]["source"] == "repro.runner"
