"""The codebase invariant linter (``tools/lint_invariants.py``): every
rule, the escape hatches, and the live run over ``src/``.

The tool lives outside the package (it must lint the package without
importing it), so tests load it by file path.
"""

import importlib.util
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "lint_invariants.py"


def _load():
    spec = importlib.util.spec_from_file_location("lint_invariants", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = _load()


def _codes(source):
    return [v.code for v in lint.lint_source(textwrap.dedent(source),
                                             "x.py")]


# ----------------------------------------------------------------------
# L001: deadline-free fixpoint loops.
# ----------------------------------------------------------------------

class TestDeadlineRule:
    def test_flags_frontier_loop_without_check(self):
        assert _codes("""
            def f(frontier):
                while frontier:
                    frontier.pop()
        """) == ["L001"]

    def test_accepts_loop_with_check(self):
        assert _codes("""
            def f(frontier):
                while frontier:
                    check_deadline()
                    frontier.pop()
        """) == []

    def test_accepts_nested_check(self):
        assert _codes("""
            def f(changed):
                while changed:
                    if True:
                        budget.check_deadline()
                    changed = step()
        """) == []

    def test_ignores_plain_traversal_stacks(self):
        assert _codes("""
            def f(stack, queue):
                while stack:
                    stack.pop()
                while queue:
                    queue.popleft()
        """) == []

    def test_compound_condition_detected(self):
        assert _codes("""
            def f(delta, stage):
                while any(delta.values()) and stage < 5:
                    delta = step(delta)
        """) == ["L001"]

    def test_violation_key_uses_qualname(self):
        violations = lint.lint_source(textwrap.dedent("""
            class Kernel:
                def run(self, work):
                    while work:
                        work.pop()
        """), "pkg/mod.py")
        assert violations[0].key == "L001 pkg/mod.py::Kernel.run"


# ----------------------------------------------------------------------
# L002: unregistered lru_cache.
# ----------------------------------------------------------------------

class TestCacheRule:
    def test_flags_unregistered_cache(self):
        assert _codes("""
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def lookup(key):
                return key
        """) == ["L002"]

    def test_accepts_registered_cache(self):
        assert _codes("""
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def lookup(key):
                return key

            register_shared_cache(lookup.cache_clear, "mod.lookup")
        """) == []

    def test_bare_decorator_and_attribute_form(self):
        assert _codes("""
            import functools

            @functools.lru_cache
            def lookup(key):
                return key
        """) == ["L002"]


# ----------------------------------------------------------------------
# L003: bare except.
# ----------------------------------------------------------------------

class TestBareExceptRule:
    def test_flags_bare_except(self):
        assert _codes("""
            def f():
                try:
                    g()
                except:
                    pass
        """) == ["L003"]

    def test_accepts_typed_except(self):
        assert _codes("""
            def f():
                try:
                    g()
                except Exception:
                    pass
        """) == []


# ----------------------------------------------------------------------
# L004: sorted __all__.
# ----------------------------------------------------------------------

class TestSortedAllRule:
    def test_flags_unsorted(self):
        assert _codes('__all__ = ["b", "a"]\n') == ["L004"]

    def test_accepts_sorted(self):
        assert _codes('__all__ = ["a", "b"]\n') == []

    def test_ignores_computed_entries(self):
        assert _codes('__all__ = ["b"] \n__all__ = ["b", "a" + ""]\n') == []

    def test_ignores_non_module_scope(self):
        assert _codes("""
            def f():
                __all__ = ["b", "a"]
        """) == []


# ----------------------------------------------------------------------
# Escape hatches.
# ----------------------------------------------------------------------

class TestEscapeHatches:
    def test_inline_allow_suppresses(self):
        assert _codes("""
            def f(work):
                while work:  # lint: allow(L001)
                    work.pop()
        """) == []

    def test_inline_allow_is_code_specific(self):
        assert _codes("""
            def f(work):
                while work:  # lint: allow(L002)
                    work.pop()
        """) == ["L001"]

    def test_allowlist_covers_and_reports_stale(self):
        violations = lint.lint_source(
            "def f(work):\n    while work:\n        work.pop()\n", "m.py")
        remaining, stale = lint.apply_allowlist(
            violations, {"L001 m.py::f", "L003 gone.py::g"})
        assert remaining == []
        assert stale == {"L003 gone.py::g"}

    def test_load_allowlist_skips_comments(self, tmp_path):
        path = tmp_path / "allow.txt"
        path.write_text("# comment\n\nL001 a.py::f\n")
        assert lint.load_allowlist(path) == {"L001 a.py::f"}


# ----------------------------------------------------------------------
# The live run: src/ must be clean modulo the committed allowlist.
# ----------------------------------------------------------------------

def test_src_tree_is_clean():
    violations = lint.lint_paths([REPO_ROOT / "src"], REPO_ROOT)
    allowed = lint.load_allowlist(REPO_ROOT / "tools" /
                                  "lint_allowlist.txt")
    remaining, stale = lint.apply_allowlist(violations, allowed)
    assert not remaining, [v.render() for v in remaining]
    assert not stale, sorted(stale)


def test_cli_entry_point_green():
    assert lint.main([]) == 0


def test_cli_reports_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(frontier):\n    while frontier:\n"
                   "        frontier.pop()\n")
    assert lint.main([str(bad), "--root", str(tmp_path),
                      "--allowlist", str(tmp_path / "none.txt")]) == 1
    out = capsys.readouterr().out
    assert "L001" in out and "bad.py" in out
