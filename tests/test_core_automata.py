"""Tests for the Proposition 5.9 / 5.10 automata."""

import pytest

from repro.cq.query import ConjunctiveQuery
from repro.core.cq_automaton import CQAutomaton
from repro.core.instances import InstanceEnumerator
from repro.core.ptree_automaton import (
    PTreeAutomaton,
    labeled_tree_to_proof_tree,
    proof_tree_to_labeled_tree,
)
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_atom, parse_program
from repro.trees.proof import proof_trees, root_atoms, var_space
from repro.trees.strong import has_strong_containment_mapping


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


class TestInstanceEnumerator:
    def test_labels_for_tc(self, tc_program):
        enum = InstanceEnumerator(tc_program)
        space = var_space(tc_program)
        atom = parse_atom("p(_pv0, _pv1)")
        labels = enum.labels_for(atom)
        # Recursive rule: 6 choices of Z; base rule: 1 instance.
        assert len(labels) == 7
        assert all(label.atom == atom for label in labels)
        leaf_labels = [l for l in labels if l.is_leaf()]
        assert len(leaf_labels) == 1
        assert leaf_labels[0].edb_atoms[0].predicate == "e0"

    def test_cache_hits(self, tc_program):
        enum = InstanceEnumerator(tc_program)
        atom = parse_atom("p(_pv0, _pv1)")
        assert enum.labels_for(atom) is enum.labels_for(atom)

    def test_repeated_head_vars_constrain_instances(self):
        program = parse_program(
            """
            p(X, X) :- e(X, X).
            p(X, Y) :- e(X, Z), p(Z, Y).
            """
        )
        enum = InstanceEnumerator(program)
        distinct = parse_atom("p(_pv0, _pv1)")
        same = parse_atom("p(_pv0, _pv0)")
        # The diagonal rule can only label nodes with equal arguments.
        assert all(
            len(l.idb_atoms) == 1 for l in enum.labels_for(distinct)
        )
        assert any(len(l.idb_atoms) == 0 for l in enum.labels_for(same))


class TestPTreeAutomaton:
    def test_accepts_exactly_proof_trees(self, tc_program):
        automaton = PTreeAutomaton(tc_program, "p")
        for tree in proof_trees(tc_program, "p", 2):
            assert automaton.accepts_proof_tree(tree)

    def test_rejects_non_proof_tree(self, tc_program):
        from repro.trees.expansion import unfolding_trees

        automaton = PTreeAutomaton(tc_program, "p")
        deep = next(t for t in unfolding_trees(tc_program, "p", 2) if t.height() == 2)
        # Unfolding trees use W/X variables outside var(Pi).
        assert not automaton.accepts_proof_tree(deep)

    def test_materialized_language_matches_enumeration(self, tc_program):
        automaton = PTreeAutomaton(tc_program, "p")
        explicit = automaton.materialize()
        trees = list(proof_trees(tc_program, "p", 2))
        assert all(
            explicit.accepts(proof_tree_to_labeled_tree(t, tc_program)) for t in trees
        )
        # And the automaton accepts nothing of depth <= 2 beyond them.
        accepted = explicit.enumerate_trees(2)
        assert len(accepted) == len(trees)

    def test_roundtrip_labeled_tree(self, tc_program):
        tree = next(iter(proof_trees(tc_program, "p", 2)))
        labeled = proof_tree_to_labeled_tree(tree, tc_program)
        assert labeled_tree_to_proof_tree(labeled).to_query(
            tc_program
        ).head == tree.to_query(tc_program).head

    def test_size_estimate(self, tc_program):
        automaton = PTreeAutomaton(tc_program, "p")
        estimate = automaton.size_estimate()
        assert estimate["states"] == 36
        assert estimate["symbols"] == 252  # 216 recursive + 36 base instances


class TestCQAutomaton:
    def test_rejects_idb_atoms_in_query(self, tc_program):
        with pytest.raises(ValidationError):
            CQAutomaton(tc_program, "p", cq("p(X, Y)", "p(X, Y)"))

    def test_rejects_arity_mismatch(self, tc_program):
        with pytest.raises(ValidationError):
            CQAutomaton(tc_program, "p", cq("p(X)", "e0(X, X)"))

    def test_initial_state_repeated_head(self, tc_program):
        automaton = CQAutomaton(tc_program, "p", cq("p(X, X)", "e0(X, X)"))
        space = var_space(tc_program)
        distinct = parse_atom("p(_pv0, _pv1)")
        same = parse_atom("p(_pv0, _pv0)")
        assert automaton.initial_state(distinct) is None
        assert automaton.initial_state(same) is not None

    def test_agrees_with_strong_mapping_oracle(self, tc_program):
        """Proposition 5.10: T(A^theta) = proof trees with a strong
        containment mapping from theta (differential, heights <= 2)."""
        queries = [
            cq("p(X0, X1)", "e0(X0, X1)"),
            cq("p(X0, X1)", "e(X0, Z)", "e0(Z, X1)"),
            cq("p(X0, X1)", "e(X0, Z)"),
            cq("p(X0, X0)", "e0(X0, X0)"),
            cq("p(X0, X1)", "e0(Z, X1)"),
        ]
        for theta in queries:
            automaton = CQAutomaton(tc_program, "p", theta)
            for tree in proof_trees(tc_program, "p", 2):
                expected = has_strong_containment_mapping(theta, tree, tc_program)
                got = _automaton_accepts(automaton, tc_program, tree)
                assert got == expected, (theta, str(tree))


def _automaton_accepts(automaton, program, tree) -> bool:
    """Run A^theta on a proof tree directly (recursive simulation)."""
    from repro.core.instances import InstanceEnumerator, Label

    idb = program.idb_predicates

    def label_of(node):
        return Label(
            atom=node.atom,
            rule=node.rule,
            idb_atoms=node.rule.idb_body_atoms(idb),
            edb_atoms=node.rule.edb_body_atoms(idb),
        )

    def run(state, node) -> bool:
        label = label_of(node)
        for children_states in automaton.successors(state, label):
            if len(children_states) != len(node.children):
                continue
            if all(run(s, c) for s, c in zip(children_states, node.children)):
                return True
        return False

    initial = automaton.initial_state(tree.atom)
    if initial is None:
        return False
    return run(initial, tree)
