"""Tree-automata substrate tests (Propositions 4.4-4.6)."""

import random

import pytest

from repro.automata.tree import (
    BottomUpDeterministic,
    LabeledTree,
    TreeAutomaton,
    complement,
    contained_in,
    contained_in_union,
    equivalent,
    find_counterexample_tree,
    path_tree,
)


def any_tree() -> TreeAutomaton:
    """All trees over f(.,.) / g(.) / a."""
    return TreeAutomaton.build(
        ["f", "g", "a"], ["s"], ["s"],
        [("s", "f", ("s", "s")), ("s", "g", ("s",)), ("s", "a", ())],
    )


def left_comb() -> TreeAutomaton:
    """Trees where every f-node's right child is a leaf."""
    return TreeAutomaton.build(
        ["f", "a"], ["s", "leaf"], ["s"],
        [("s", "f", ("s", "leaf")), ("s", "a", ()), ("leaf", "a", ())],
    )


def random_nta(rng: random.Random) -> TreeAutomaton:
    states = [f"s{i}" for i in range(3)]
    transitions = []
    for state in states:
        if rng.random() < 0.8:
            transitions.append((state, "a", ()))
        for _ in range(rng.randint(0, 3)):
            transitions.append(
                (state, "f", (rng.choice(states), rng.choice(states)))
            )
        if rng.random() < 0.5:
            transitions.append((state, "g", (rng.choice(states),)))
    return TreeAutomaton.build(
        ["f", "g", "a"], states, [rng.choice(states)], transitions
    )


LEAF = LabeledTree("a")
F2 = LabeledTree("f", (LEAF, LEAF))
DEEP = LabeledTree("f", (F2, LEAF))
RIGHT_DEEP = LabeledTree("f", (LEAF, F2))


class TestLabeledTree:
    def test_size_and_depth(self):
        assert LEAF.size() == 1 and LEAF.depth() == 1
        assert DEEP.size() == 5 and DEEP.depth() == 3

    def test_path_tree(self):
        tree = path_tree(["r", "m", "l"])
        assert tree.label == "r"
        assert tree.children[0].children[0].label == "l"
        assert tree.depth() == 3

    def test_nodes_preorder(self):
        labels = [n.label for n in DEEP.nodes()]
        assert labels == ["f", "f", "a", "a", "a"]


class TestAcceptance:
    def test_any_tree_accepts(self):
        automaton = any_tree()
        for tree in (LEAF, F2, DEEP, RIGHT_DEEP):
            assert automaton.accepts(tree)

    def test_left_comb(self):
        automaton = left_comb()
        assert automaton.accepts(DEEP)
        assert not automaton.accepts(RIGHT_DEEP)

    def test_paper_style_accepting_states_normalized(self):
        # Using the paper's convention: leaf transition to an accept
        # state, with F = {accept}.
        automaton = TreeAutomaton.build(
            ["f", "a"], ["s", "accept"], ["s"],
            [("s", "f", ("s", "s")), ("s", "a", ("accept",))],
            accepting=["accept"],
        )
        assert automaton.accepts(LEAF)
        assert automaton.accepts(F2)


class TestEmptiness:
    def test_nonempty_with_witness(self):
        automaton = left_comb()
        assert not automaton.is_empty()
        witness = automaton.find_tree()
        assert automaton.accepts(witness)

    def test_empty_automaton(self):
        automaton = TreeAutomaton.build(
            ["f"], ["s"], ["s"], [("s", "f", ("s", "s"))]
        )
        # No leaf transition: no finite tree accepted.
        assert automaton.is_empty()
        assert automaton.find_tree() is None

    def test_productive_states(self):
        automaton = TreeAutomaton.build(
            ["f", "a"], ["s", "dead"], ["s"],
            [("s", "a", ()), ("dead", "f", ("dead", "dead"))],
        )
        assert automaton.productive_states() == {"s"}


class TestBooleanOperations:
    def test_union(self):
        u = left_comb().union(any_tree())
        assert u.accepts(RIGHT_DEEP)
        assert equivalent(u, any_tree().union(left_comb()))

    def test_intersection(self):
        inter = any_tree().intersection(left_comb())
        assert equivalent(inter, left_comb())

    def test_complement_partitions_sampled(self):
        comp = complement(left_comb())
        for tree in any_tree().enumerate_trees(3):
            assert left_comb().accepts(tree) != comp.accepts(tree)

    def test_complement_reachable_subsets(self):
        det = BottomUpDeterministic(left_comb())
        subsets = det.reachable_subsets(max_subsets=64)
        assert frozenset() in subsets or len(subsets) >= 1

    def test_enumerate_trees(self):
        trees = left_comb().enumerate_trees(3)
        assert all(left_comb().accepts(t) for t in trees)
        assert any(t.depth() == 3 for t in trees)


class TestContainment:
    def test_known(self):
        assert contained_in(left_comb(), any_tree())
        assert not contained_in(any_tree(), left_comb())

    def test_counterexample_genuine(self):
        witness = find_counterexample_tree(any_tree(), left_comb())
        assert witness is not None
        assert any_tree().accepts(witness)
        assert not left_comb().accepts(witness)

    def test_union_containment(self):
        assert contained_in_union(left_comb(), [left_comb(), any_tree()])
        assert contained_in_union(any_tree(), [any_tree()])

    def test_antichain_matches_exact_mode(self):
        rng = random.Random(5)
        for _ in range(25):
            left, right = random_nta(rng), random_nta(rng)
            assert contained_in(left, right, use_antichain=True) == contained_in(
                left, right, use_antichain=False
            )

    def test_agrees_with_tree_sampling(self):
        rng = random.Random(9)
        for _ in range(25):
            left, right = random_nta(rng), random_nta(rng)
            verdict = contained_in(left, right)
            for tree in left.enumerate_trees(3, limit=60):
                if not right.accepts(tree):
                    assert not verdict
                    break
            witness = find_counterexample_tree(left, right)
            if witness is not None:
                assert left.accepts(witness) and not right.accepts(witness)
            else:
                assert verdict

    def test_reflexive(self):
        rng = random.Random(31)
        for _ in range(10):
            automaton = random_nta(rng)
            assert contained_in(automaton, automaton)
