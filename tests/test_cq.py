"""Conjunctive-query tests: representation, homomorphisms, containment
(Theorems 2.2 and 2.3), minimization, canonical databases."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.canonical import canonical_database, evaluate_cq, evaluate_ucq
from repro.cq.containment import (
    cq_contained_in,
    cq_contained_in_ucq,
    cq_equivalent,
    minimal_union,
    ucq_contained_in,
    ucq_equivalent,
)
from repro.cq.homomorphism import containment_mapping, find_homomorphism
from repro.cq.minimize import is_minimal, minimize
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_rule
from repro.datalog.terms import Constant, Variable

from .conftest import random_graph_database


def cq(source: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_rule(parse_rule(source))


class TestRepresentation:
    def test_distinguished_and_existential(self):
        q = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        assert q.distinguished_variables == {Variable("X"), Variable("Y")}
        assert q.existential_variables == {Variable("Z")}

    def test_boolean(self):
        q = cq("q :- e(X, Y).")
        assert q.is_boolean and q.arity == 0

    def test_safety(self):
        assert cq("q(X) :- e(X, Y).").is_safe
        assert not cq("q(X, W) :- e(X, Y).").is_safe

    def test_rename_apart(self):
        q = cq("q(X) :- e(X, Y).")
        renamed = q.rename_apart()
        assert renamed.variables.isdisjoint(q.variables)
        assert cq_equivalent(q, renamed)

    def test_canonical_rename_is_stable(self):
        q1 = cq("q(X) :- e(X, Y), f(Y, Z).")
        q2 = cq("q(A) :- f(B, C), e(A, B).")
        assert str(q1.rename_canonical()) == str(q2.rename_canonical())

    def test_union_arity_check(self):
        from repro.datalog.errors import ValidationError

        with pytest.raises(ValidationError):
            UnionOfConjunctiveQueries([cq("q(X) :- e(X, X)."), cq("q :- e(X, X).")])


class TestContainment:
    def test_path2_contained_in_path1(self):
        longer = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        shorter = cq("q(X, Y) :- e(X, Z1), e(Z2, Y).")  # disconnected
        assert cq_contained_in(longer, shorter)
        assert not cq_contained_in(shorter, longer)

    def test_triangle_vs_cycle(self):
        # A boolean 'has a triangle' query is contained in 'has a walk
        # of length 3' but not conversely.
        triangle = cq("q :- e(X, Y), e(Y, Z), e(Z, X).")
        walk = cq("q :- e(X, Y), e(Y, Z), e(Z, W).")
        assert cq_contained_in(triangle, walk)
        assert not cq_contained_in(walk, triangle)

    def test_distinguished_variables_pin_the_mapping(self):
        out_edge = cq("q(X) :- e(X, Y).")
        in_edge = cq("q(X) :- e(Y, X).")
        assert not cq_contained_in(out_edge, in_edge)
        assert not cq_contained_in(in_edge, out_edge)

    def test_repeated_head_variables(self):
        diag = cq("q(X, X) :- e(X, X).")
        pair = cq("q(X, Y) :- e(X, Y).")
        assert cq_contained_in(diag, pair)
        assert not cq_contained_in(pair, diag)

    def test_constants_remark_5_14(self):
        with_const = cq("q(X) :- e(X, a).")
        general = cq("q(X) :- e(X, Y).")
        assert cq_contained_in(with_const, general)
        assert not cq_contained_in(general, with_const)

    def test_head_constants(self):
        fixed = cq("q(a) :- e(a, X).")
        free = cq("q(Y) :- e(Y, X).")
        assert cq_contained_in(fixed, free)
        assert not cq_contained_in(free, fixed)

    def test_self_containment(self):
        q = cq("q(X, Y) :- e(X, Z), f(Z, Y), e(Y, X).")
        assert cq_contained_in(q, q)

    def test_ucq_containment_sagiv_yannakakis(self):
        # path1 | path2  is contained in  path1 | path2 | path3,
        # and path2 alone is contained in the union.
        p1 = cq("q(X, Y) :- e(X, Y).")
        p2 = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        p3 = cq("q(X, Y) :- e(X, Z), e(Z, W), e(W, Y).")
        small = UnionOfConjunctiveQueries([p1, p2])
        big = UnionOfConjunctiveQueries([p1, p2, p3])
        assert ucq_contained_in(small, big)
        assert not ucq_contained_in(big, small)
        assert cq_contained_in_ucq(p2, big)
        assert ucq_equivalent(big, UnionOfConjunctiveQueries([p3, p2, p1]))

    def test_containment_mapping_direction(self):
        # theta contained in psi iff mapping FROM psi TO theta.
        theta = cq("q(X) :- e(X, Y), e(Y, Z).")
        psi = cq("q(X) :- e(X, W).")
        assert containment_mapping(psi, theta) is not None
        assert containment_mapping(theta, psi) is None

    def test_semantic_agreement_random(self):
        rng = random.Random(13)
        q_long = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        q_short = cq("q(X, Y) :- e(X, Z1), e(Z2, Y).")
        for _ in range(20):
            db = random_graph_database(rng, nodes=4)
            assert evaluate_cq(q_long, db) <= evaluate_cq(q_short, db)


class TestMinimization:
    def test_redundant_atom_removed(self):
        q = cq("q(X, Y) :- e(X, Y), e(X, Z).")
        core = minimize(q)
        assert len(core.body) == 1
        assert cq_equivalent(q, core)

    def test_core_of_big_redundant_query(self):
        q = cq("q(X) :- e(X, Y1), e(X, Y2), e(X, Y3), e(Y3, Y3).")
        core = minimize(q)
        assert len(core.body) == 2  # e(X, Y3), e(Y3, Y3)
        assert cq_equivalent(q, core)

    def test_minimal_query_untouched(self):
        q = cq("q(X, Y) :- e(X, Z), f(Z, Y).")
        assert minimize(q) is not None
        assert len(minimize(q).body) == 2
        assert is_minimal(q)

    def test_idempotent(self):
        q = cq("q(X) :- e(X, Y), e(X, Z), e(Z, W).")
        once = minimize(q)
        assert len(minimize(once).body) == len(once.body)

    def test_triangle_core(self):
        # A 6-cycle query (boolean) has the 2-cycle...no: boolean cycle
        # queries map onto any odd cycle; the core of C6 is an edge
        # pair? C6 maps homomorphically onto C2 (bipartite), so with a
        # C2 present the core is C2... keep it simple: duplicated
        # triangle collapses to one triangle.
        q = cq("q :- e(X, Y), e(Y, Z), e(Z, X), e(A, B), e(B, C), e(C, A).")
        assert len(minimize(q).body) == 3

    def test_union_minimization(self):
        p1 = cq("q(X, Y) :- e(X, Y).")
        p1_dup = cq("q(A, B) :- e(A, B).")
        p2 = cq("q(X, Y) :- e(X, Z), e(Z, Y), e(X, Y).")  # contained in p1
        union = UnionOfConjunctiveQueries([p1, p1_dup, p2])
        assert len(minimal_union(union)) == 1


class TestCanonicalDatabase:
    def test_frozen_head_evaluates_true(self):
        q = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        db, head = canonical_database(q)
        assert head in evaluate_cq(q, db)

    def test_containment_via_canonical(self):
        theta = cq("q(X, Y) :- e(X, Z), e(Z, Y).")
        psi = cq("q(X, Y) :- e(X, Z1), e(Z2, Y).")
        db, head = canonical_database(theta)
        assert head in evaluate_cq(psi, db)  # theta contained in psi

    def test_constants_kept(self):
        q = cq("q(X) :- e(X, a).")
        db, _ = canonical_database(q)
        assert any(Constant("a") in row for row in db.relation("e"))

    def test_unsafe_query_active_domain(self):
        q = cq("q(X, W) :- e(X, X).")
        db = Database.from_facts([("e", ("a", "a")), ("e", ("a", "b"))])
        rows = {(x.value, w.value) for x, w in evaluate_cq(q, db)}
        assert rows == {("a", "a"), ("a", "b")}

    def test_evaluate_ucq(self):
        p1 = cq("q(X) :- e(X, X).")
        p2 = cq("q(X) :- f(X).")
        union = UnionOfConjunctiveQueries([p1, p2])
        db = Database.from_facts([("e", ("a", "a")), ("f", ("b",))])
        assert {r[0].value for r in evaluate_ucq(union, db)} == {"a", "b"}


_pred = st.sampled_from(["e", "f"])
_var_name = st.sampled_from(["X", "Y", "Z", "W"])


@st.composite
def _random_cq(draw):
    body = []
    for _ in range(draw(st.integers(1, 4))):
        body.append(parse_atom(f"{draw(_pred)}({draw(_var_name)}, {draw(_var_name)})"))
    head_var = draw(_var_name)
    return ConjunctiveQuery(parse_atom(f"q({head_var})"), tuple(body))


class TestContainmentProperties:
    @settings(max_examples=60, deadline=None)
    @given(_random_cq(), _random_cq())
    def test_containment_is_sound_semantically(self, a, b):
        if not cq_contained_in(a, b):
            return
        rng = random.Random(42)
        for _ in range(5):
            db = random_graph_database(rng, nodes=3)
            for s, t in list(db.relation("e"))[:2]:
                db.add("f", (s, t))
            assert evaluate_cq(a, db) <= evaluate_cq(b, db)

    @settings(max_examples=40, deadline=None)
    @given(_random_cq())
    def test_minimize_preserves_equivalence(self, q):
        core = minimize(q)
        assert cq_equivalent(q, core)
        assert len(core.body) <= len(q.body)

    @settings(max_examples=40, deadline=None)
    @given(_random_cq(), _random_cq(), _random_cq())
    def test_containment_is_transitive(self, a, b, c):
        if cq_contained_in(a, b) and cq_contained_in(b, c):
            assert cq_contained_in(a, c)
