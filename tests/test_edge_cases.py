"""Edge cases and failure-path tests across modules."""

import pytest

from repro.automata.tree import LabeledTree, TreeAutomaton, path_tree
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.atoms import Atom, make_atom
from repro.datalog.database import Database
from repro.datalog.engine import evaluate, query
from repro.datalog.errors import (
    ArityError,
    NotLinearError,
    NotNonrecursiveError,
    ParseError,
    ReproError,
    ValidationError,
)
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ArityError, NotLinearError, NotNonrecursiveError, ParseError, ValidationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            parse_program("p(X")


class TestProgramEdgeCases:
    def test_empty_program(self):
        program = Program(())
        assert program.idb_predicates == frozenset()
        assert program.size() == 0

    def test_arity_clash_rejected(self):
        with pytest.raises(ArityError):
            parse_program("p(X) :- e(X).\np(X, Y) :- e(X).")

    def test_predicate_used_as_idb_and_edb(self):
        # 'q' is IDB (appears in a head) even though also used in a body.
        program = parse_program("p(X) :- q(X).\nq(X) :- e(X).")
        assert program.idb_predicates == {"p", "q"}
        assert program.edb_predicates == {"e"}

    def test_extend(self):
        program = parse_program("p(X) :- e(X).")
        extended = program.extend(parse_program("q(X) :- p(X).").rules)
        assert extended.idb_predicates == {"p", "q"}
        assert len(program) == 1  # original untouched

    def test_goal_validation_error_message(self):
        program = parse_program("p(X) :- e(X).")
        with pytest.raises(ValidationError, match="goal"):
            program.require_goal("missing")


class TestZeroArity:
    def test_zero_ary_goal_containment(self):
        """Boolean goals (like the lower-bound encodings' C) flow
        through the whole pipeline."""
        from repro.core import contained_in_ucq

        program = parse_program("c :- trigger(X), c.\nc :- base(X).")
        union = UnionOfConjunctiveQueries(
            [ConjunctiveQuery(Atom("c", ()), (parse_atom("base(Z)"),))]
        )
        assert contained_in_ucq(program, "c", union, method="tree").contained

    def test_zero_ary_goal_noncontainment(self):
        from repro.core import contained_in_ucq

        program = parse_program("c :- trigger(X), c.\nc :- base(X).")
        union = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery(
                    Atom("c", ()),
                    (parse_atom("base(Z)"), parse_atom("trigger(Z)")),
                )
            ]
        )
        result = contained_in_ucq(program, "c", union, method="tree")
        assert not result.contained


class TestConstantsEndToEnd:
    def test_program_with_constants_containment(self):
        """Remark 5.14: constants in rules and queries."""
        from repro.core import contained_in_cq

        program = parse_program(
            """
            p(X) :- e(X, root), p(X).
            p(X) :- b(X, root).
            """
        )
        theta = ConjunctiveQuery(parse_atom("p(X0)"), (parse_atom("b(Z, root)"),))
        assert contained_in_cq(program, "p", theta, method="tree").contained
        theta_wrong = ConjunctiveQuery(
            parse_atom("p(X0)"), (parse_atom("b(Z, other)"),)
        )
        assert not contained_in_cq(program, "p", theta_wrong, method="tree").contained

    def test_constant_binding_through_recursion(self):
        from repro.core import contained_in_cq

        program = parse_program(
            """
            p(X) :- e(X, Z), p(Z).
            p(root).
            """
        )
        # Every derivation bottoms out at the fact p(root): with no EDB
        # atom in the leaf rule, only a trivially-true theta covers it.
        theta = ConjunctiveQuery(parse_atom("p(X0)"), ())
        assert contained_in_cq(program, "p", theta, method="tree").contained

    def test_head_constant_query(self):
        from repro.core import contained_in_cq

        program = parse_program("p(root) :- e(root, root).")
        theta = ConjunctiveQuery(
            Atom("p", (Constant("root"),)), (parse_atom("e(root, root)"),)
        )
        assert contained_in_cq(program, "p", theta, method="tree").contained


class TestTreeAutomatonEdges:
    def test_single_node_language(self):
        automaton = TreeAutomaton.build(["a"], ["s"], ["s"], [("s", "a", ())])
        assert automaton.accepts(LabeledTree("a"))
        assert not automaton.accepts(LabeledTree("a", (LabeledTree("a"),)))

    def test_path_tree_validation(self):
        with pytest.raises(ValidationError):
            path_tree([])

    def test_unknown_symbol_rejected(self):
        automaton = TreeAutomaton.build(["a"], ["s"], ["s"], [("s", "a", ())])
        assert not automaton.accepts(LabeledTree("z"))


class TestEngineEdges:
    def test_fact_only_program(self):
        program = parse_program("p(a, b).\np(b, c).")
        result = evaluate(program, Database())
        assert len(result.facts("p")) == 2

    def test_rule_with_goal_in_own_body_and_no_base(self):
        program = parse_program("p(X) :- p(X).")
        db = Database.from_facts([("e", ("a",))])
        assert query(program, db, "p") == frozenset()

    def test_duplicate_rules_harmless(self):
        program = parse_program("p(X) :- e(X).\np(X) :- e(X).")
        db = Database.from_facts([("e", ("a",))])
        assert len(query(program, db, "p")) == 1
