"""Parser tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.errors import ParseError
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable


class TestBasics:
    def test_program(self):
        program = parse_program(
            """
            % transitive closure
            p(X, Y) :- e(X, Z), p(Z, Y).
            p(X, Y) :- e0(X, Y).
            """
        )
        assert len(program) == 2
        assert program.idb_predicates == {"p"}
        assert program.edb_predicates == {"e", "e0"}

    def test_comments_both_styles(self):
        program = parse_program("# one\np(X) :- e(X). % trailing\n% two\n")
        assert len(program) == 1

    def test_fact(self):
        program = parse_program("edge(a, b).")
        assert program.rules[0].is_fact

    def test_integers_and_strings(self):
        atom = parse_atom("p(1, -2, 'hello world', \"quoted\")")
        assert atom.args == (
            Constant(1),
            Constant(-2),
            Constant("hello world"),
            Constant("quoted"),
        )

    def test_underscore_variable(self):
        assert parse_atom("p(_x)").args == (Variable("_x"),)

    def test_zero_ary_atom(self):
        assert parse_atom("goal") == Atom("goal", ())
        assert parse_rule("goal :- e(X).").head == Atom("goal", ())

    def test_zero_ary_with_parens(self):
        assert parse_atom("goal()") == Atom("goal", ())

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_whitespace_insensitive(self):
        a = parse_program("p(X,Y):-e(X,Y).")
        b = parse_program("p( X , Y ) :- e( X , Y ) .")
        assert a.rules == b.rules


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "p(X, Y)",           # missing period
            "p(X :- e(X).",      # unbalanced parens
            "p(X)) :- e(X).",    # stray paren
            ":- e(X).",          # missing head
            "P(X) :- e(X).",     # uppercase predicate
            "p('unterminated.",  # unterminated string
            "p(X) :- e(X). extra",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_carries_position(self):
        try:
            parse_program("p(X) :- e(X).\np(?) :- e(X).")
        except ParseError as err:
            assert err.line is not None
        else:
            pytest.fail("expected ParseError")

    def test_atom_trailing_input(self):
        with pytest.raises(ParseError):
            parse_atom("p(X) q")


_ident = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
_var = st.from_regex(r"[A-Z][a-z0-9]{0,3}", fullmatch=True)
_term = st.one_of(
    _var.map(Variable),
    _ident.map(Constant),
    st.integers(min_value=-99, max_value=99).map(Constant),
)
_atom = st.builds(
    Atom, predicate=_ident, args=st.lists(_term, max_size=4).map(tuple)
)
_rule = st.builds(Rule, head=_atom, body=st.lists(_atom, max_size=4).map(tuple))


class TestRoundTrip:
    @given(_atom)
    def test_atom_roundtrip(self, atom):
        assert parse_atom(str(atom)) == atom

    @given(_rule)
    def test_rule_roundtrip(self, rule):
        assert parse_rule(str(rule)) == rule

    @given(st.lists(_rule, max_size=5))
    def test_program_roundtrip(self, rules):
        try:
            program = Program(rules)
        except Exception:
            # Arity clashes between random rules are fine to skip.
            return
        assert parse_program(str(program)).rules == program.rules
