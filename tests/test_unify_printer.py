"""Unification and printer tests."""

import pytest

from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.printer import program_to_source, side_by_side
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import (
    apply_to_atom,
    resolve,
    unify_atoms,
    unify_terms,
    unify_tuples,
)


class TestUnify:
    def test_variable_to_constant(self):
        subst = unify_terms(Variable("X"), Constant("a"), {})
        assert resolve(Variable("X"), subst) == Constant("a")

    def test_constant_clash(self):
        assert unify_terms(Constant("a"), Constant("b"), {}) is None

    def test_variable_chain_resolution(self):
        subst = unify_terms(Variable("X"), Variable("Y"), {})
        subst = unify_terms(Variable("Y"), Constant("c"), subst)
        assert resolve(Variable("X"), subst) == Constant("c")

    def test_tuples(self):
        left = parse_atom("p(X, Y, a)").args
        right = parse_atom("p(b, X, Z)").args
        subst = unify_tuples(left, right, {})
        assert resolve(Variable("X"), subst) == Constant("b")
        assert resolve(Variable("Y"), subst) == Constant("b")
        assert resolve(Variable("Z"), subst) == Constant("a")

    def test_tuples_length_mismatch(self):
        assert unify_tuples((Variable("X"),), (), {}) is None

    def test_atoms_predicate_mismatch(self):
        assert unify_atoms(parse_atom("p(X)"), parse_atom("q(X)")) is None

    def test_repeated_variable_forces_equality(self):
        subst = unify_tuples(
            parse_atom("p(X, X)").args, parse_atom("p(A, B)").args, {}
        )
        assert resolve(Variable("A"), subst) == resolve(Variable("B"), subst)

    def test_occurs_free_is_sound(self):
        # Function-free: unification always terminates and resolves.
        subst = unify_tuples(
            parse_atom("p(X, Y, Z)").args, parse_atom("p(Y, Z, X)").args, {}
        )
        terms = {resolve(Variable(v), subst) for v in "XYZ"}
        assert len(terms) == 1

    def test_apply_to_atom(self):
        subst = {Variable("X"): Variable("Y"), Variable("Y"): Constant("c")}
        assert apply_to_atom(parse_atom("p(X, Y)"), subst) == parse_atom("p(c, c)")

    def test_does_not_mutate_input(self):
        subst = {}
        unify_terms(Variable("X"), Constant("a"), subst)
        assert subst == {}


class TestPrinter:
    def test_roundtrip(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Z), p(Z, Y).
            p(X, Y) :- e0(X, Y).
            q(a).
            """
        )
        assert parse_program(program_to_source(program)).rules == program.rules

    def test_grouped_output(self):
        program = parse_program(
            """
            p(X) :- a(X).
            q(X) :- b(X).
            p(X) :- c(X).
            """
        )
        grouped = program_to_source(program, group_by_predicate=True)
        assert parse_program(grouped).rules != program.rules  # reordered
        blocks = grouped.split("\n\n")
        assert len(blocks) == 2

    def test_side_by_side(self):
        text = side_by_side("left1\nleft2", "right1", titles=["L", "R"])
        lines = text.splitlines()
        assert "L" in lines[0] and "R" in lines[0]
        assert any("left2" in line for line in lines)
