"""Golden tests pinning the decision service wire protocol.

Every request and response JSON shape -- decide/eval/scenario/status/
shutdown requests, decision/error/overload/status/ok responses, and
the typed ``bad-request`` rejection of each malformed-input class --
is pinned byte-for-byte in committed golden files under
``tests/golden/service/``.  A wire change (renamed field, new default,
different coalescing key) fails here first, on the exact line that
moved, before any client notices.

To regenerate after an *intentional* protocol change::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_service_protocol.py

then review the golden diff like any other API change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    canonical_payload,
    coalesce_key,
    decode_request,
    decision_response,
    encode_response,
    error_response,
    fingerprint_for,
    ok_response,
    overload_response,
    status_response,
)
from repro.session import Decision

GOLDEN_DIR = Path(__file__).parent / "golden" / "service"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

BUYS = ("buys(X, Y) :- likes(X, Y). "
        "buys(X, Y) :- trendy(X), buys(Z, Y).")
BUYS_NR = ("buys(X, Y) :- likes(X, Y). "
           "buys(X, Y) :- trendy(X), likes(Z, Y).")

#: Every valid-request class on the wire: (name, raw request line).
#: Decoding is pinned as (op, id, normalized payload, coalescing key).
VALID_REQUESTS = [
    ("decide_equivalence",
     json.dumps({"op": "decide", "kind": "equivalence", "id": "q1",
                 "program": BUYS, "nonrecursive": BUYS_NR,
                 "goal": "buys"})),
    ("decide_containment_union",
     json.dumps({"op": "decide", "kind": "containment", "id": 7,
                 "program": BUYS, "union": BUYS_NR, "goal": "buys",
                 "method": "tree"})),
    ("decide_containment_depth",
     json.dumps({"op": "decide", "kind": "containment",
                 "program": BUYS, "union_depth": 2, "goal": "buys",
                 "engine": "compiled", "kernel": "frozenset"})),
    ("decide_boundedness",
     json.dumps({"op": "decide", "kind": "boundedness",
                 "program": BUYS, "goal": "buys", "deadline_s": 30})),
    ("eval",
     json.dumps({"op": "eval", "id": "e1",
                 "program": "tc(X,Y) :- e(X,Y). "
                            "tc(X,Y) :- tc(X,Z), e(Z,Y).",
                 "db": "e(1, 2). e(2, 3).", "goal": "tc",
                 "max_stages": 5})),
    ("scenario",
     json.dumps({"op": "scenario", "scenario": "bounded_buys",
                 "id": "s1"})),
    ("scenario_defaults_spelled_out",
     json.dumps({"op": "scenario", "scenario": "bounded_buys",
                 "engine": "columnar", "kernel": "bitset"})),
    ("status", json.dumps({"op": "status", "id": 0})),
    ("shutdown", json.dumps({"op": "shutdown"})),
]

#: Every malformed-input class: (name, raw line).  Each is pinned to
#: the exact ProtocolError message -- typed rejection, never a dropped
#: connection.
MALFORMED_REQUESTS = [
    ("not_json", "{op: status}"),
    ("not_an_object", "[1, 2, 3]"),
    ("missing_op", json.dumps({"id": "x"})),
    ("unknown_op", json.dumps({"op": "warp"})),
    ("bad_id_type", json.dumps({"op": "status", "id": [1]})),
    ("unknown_field", json.dumps({"op": "status", "turbo": True})),
    ("decide_missing_kind", json.dumps({"op": "decide", "program": BUYS,
                                        "goal": "buys"})),
    ("decide_bad_kind", json.dumps({"op": "decide", "kind": "halting",
                                    "program": BUYS, "goal": "buys"})),
    ("decide_missing_program", json.dumps({"op": "decide",
                                           "kind": "boundedness",
                                           "goal": "buys"})),
    ("decide_program_not_str", json.dumps({"op": "decide",
                                           "kind": "boundedness",
                                           "program": 9, "goal": "buys"})),
    ("equivalence_missing_nonrecursive",
     json.dumps({"op": "decide", "kind": "equivalence", "program": BUYS,
                 "goal": "buys"})),
    ("containment_both_targets",
     json.dumps({"op": "decide", "kind": "containment", "program": BUYS,
                 "goal": "buys", "union": BUYS_NR, "union_depth": 2})),
    ("containment_no_target",
     json.dumps({"op": "decide", "kind": "containment", "program": BUYS,
                 "goal": "buys"})),
    ("bad_union_depth",
     json.dumps({"op": "decide", "kind": "containment", "program": BUYS,
                 "goal": "buys", "union_depth": 0})),
    ("bad_max_depth",
     json.dumps({"op": "decide", "kind": "boundedness", "program": BUYS,
                 "goal": "buys", "max_depth": -1})),
    ("bad_method",
     json.dumps({"op": "decide", "kind": "boundedness", "program": BUYS,
                 "goal": "buys", "method": "oracle"})),
    ("bad_engine", json.dumps({"op": "scenario",
                               "scenario": "bounded_buys",
                               "engine": "quantum"})),
    ("bad_kernel", json.dumps({"op": "scenario",
                               "scenario": "bounded_buys",
                               "kernel": "quantum"})),
    ("bad_deadline", json.dumps({"op": "scenario",
                                 "scenario": "bounded_buys",
                                 "deadline_s": 0})),
    ("unknown_scenario", json.dumps({"op": "scenario",
                                     "scenario": "no_such_scenario"})),
    ("eval_missing_db", json.dumps({"op": "eval", "program": BUYS,
                                    "goal": "buys"})),
    ("eval_bad_max_stages", json.dumps({"op": "eval", "program": BUYS,
                                        "db": "likes(a, b).",
                                        "goal": "buys",
                                        "max_stages": 0})),
    ("eval_rejects_kernel", json.dumps({"op": "eval", "program": BUYS,
                                        "db": "likes(a, b).",
                                        "goal": "buys",
                                        "kernel": "bitset"})),
    # Statically invalid programs are rejected at decode time by the
    # analyzer (repro.analysis) -- never dispatched to a worker.
    ("decide_unsafe_program",
     json.dumps({"op": "decide", "kind": "boundedness",
                 "program": "p(X, Y) :- e(X).", "goal": "p"})),
    ("decide_goal_not_idb",
     json.dumps({"op": "decide", "kind": "boundedness",
                 "program": BUYS, "goal": "likes"})),
    ("eval_unparseable_program",
     json.dumps({"op": "eval", "program": "p(X :- q(X).",
                 "db": "q(a).", "goal": "p"})),
]

#: A fixed payload-stripped decision record (the worker wire shape)
#: for pinning the decision-response envelope.
FIXED_RECORD = {
    "kind": "boundedness",
    "verdict": {"bounded": True, "depth": 2},
    "ok": True,
    "stats": {"expansions": 3},
    "timings": {"decide_s": 0.004},
    "fingerprint": "0123456789abcdef",
    "checksum": "feedface",
    "attempts": 1,
    "meta": {"op": "scenario", "engine": "columnar", "kernel": "bitset",
             "scenario": "bounded_buys"},
}

def _analyzer_rejection_response():
    """The server's answer to an analyzer-rejected program, built from
    the real decode-time ProtocolError so the golden can never drift
    from the decode path."""
    try:
        decode_request(json.dumps({"op": "decide", "kind": "boundedness",
                                   "program": "p(X, Y) :- e(X).",
                                   "goal": "p", "id": "q8"}))
    except ProtocolError as exc:
        return error_response("q8", "bad-request", str(exc),
                              diagnostics=exc.diagnostics)
    raise AssertionError("unsafe program was not rejected at decode time")


#: Every response shape: (name, builder result).  Includes the
#: quarantine-style error (category + attempts spent) and every typed
#: rejection.
RESPONSES = [
    ("decision", decision_response("q1", FIXED_RECORD, coalesced=False,
                                   attempts=1, queue_ms=0.25,
                                   service_ms=4.125)),
    ("decision_coalesced", decision_response(7, FIXED_RECORD,
                                             coalesced=True, attempts=1,
                                             queue_ms=0.0,
                                             service_ms=3.5)),
    ("error_bad_request", error_response("q2", "bad-request",
                                         "unknown op 'warp'; expected one "
                                         "of ['decide', 'eval', 'scenario',"
                                         " 'shutdown', 'status']")),
    ("error_timeout", error_response("q3", "timeout",
                                     "attempt 1 timeout: BudgetExhausted: "
                                     "wall-clock budget of 0.5s exhausted",
                                     attempts=1)),
    ("error_quarantine", error_response("q4", "crash",
                                        "attempt 1 crash: worker process "
                                        "died; attempt 2 crash: worker "
                                        "process died; attempt 3 crash: "
                                        "worker process died",
                                        attempts=3)),
    ("overload", overload_response("q5", queue_depth=64, capacity=64,
                                   retry_after_ms=50.0)),
    ("error_bad_request_diagnostics", _analyzer_rejection_response()),
    ("status", status_response("q6", {"protocol": 1, "served": 12})),
    ("ok", ok_response("q7")),
]


def _golden(name: str, payload):
    """Compare *payload* to the committed golden file (or rewrite it
    under REPRO_REGEN_GOLDEN=1)."""
    path = GOLDEN_DIR / f"{name}.json"
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if REGEN:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        return
    assert path.is_file(), (
        f"missing golden file {path}; run REPRO_REGEN_GOLDEN=1 "
        f"python -m pytest {__file__}")
    assert rendered == path.read_text(), (
        f"{name} drifted from {path}; if the protocol change is "
        f"intentional, regenerate with REPRO_REGEN_GOLDEN=1")


def test_valid_requests_golden():
    """Decoding of every valid request class is pinned: op, echoed id,
    normalized payload (defaults filled), and the coalescing key."""
    decoded = {}
    for name, line in VALID_REQUESTS:
        request = decode_request(line)
        decoded[name] = {
            "line": json.loads(line),
            "op": request.op,
            "id": request.id,
            "payload": dict(request.payload),
            "canonical": canonical_payload(request),
            "coalesce_key": coalesce_key(request),
        }
    _golden("requests", decoded)


def test_malformed_requests_golden():
    """Every malformed-input class raises ProtocolError with a pinned
    message (the typed ``bad-request`` the server answers with)."""
    rejections = {}
    for name, line in MALFORMED_REQUESTS:
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        rejections[name] = {"line": line, "error": str(excinfo.value)}
    _golden("malformed", rejections)


def test_responses_golden():
    """Every response envelope encodes to a pinned byte-stable line."""
    encoded = {name: encode_response(response).decode().rstrip("\n")
               for name, response in RESPONSES}
    _golden("responses", encoded)


def test_analyzer_rejection_carries_diagnostics():
    """An analyzer-rejected program raises a ProtocolError carrying
    structured diagnostics, and the bad-request envelope forwards
    them."""
    with pytest.raises(ProtocolError) as excinfo:
        decode_request(json.dumps({"op": "decide", "kind": "boundedness",
                                   "program": "p(X, Y) :- e(X).",
                                   "goal": "p"}))
    diagnostics = excinfo.value.diagnostics
    assert diagnostics and diagnostics[0]["code"] == "E001"
    assert diagnostics[0]["severity"] == "error"
    response = error_response("r1", "bad-request", str(excinfo.value),
                              diagnostics=diagnostics)
    assert response["diagnostics"] == diagnostics
    # Plain bad requests carry no diagnostics key at all.
    assert "diagnostics" not in error_response("r2", "bad-request", "nope")


def test_oversized_line_rejected():
    line = json.dumps({"op": "decide", "kind": "boundedness",
                       "goal": "p", "program": "x" * MAX_LINE_BYTES})
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_request(line.encode())


def test_invalid_utf8_rejected():
    with pytest.raises(ProtocolError, match="UTF-8"):
        decode_request(b'{"op": "status"\xff}')


def test_bool_is_not_an_int_field():
    """JSON ``true`` must not satisfy integer fields (bool is an int
    subclass in Python)."""
    with pytest.raises(ProtocolError, match="max_depth"):
        decode_request(json.dumps({"op": "decide", "kind": "boundedness",
                                   "program": BUYS, "goal": "buys",
                                   "max_depth": True}))


def test_defaults_make_coalescing_honest():
    """Spelling out a default and omitting it decode to the same
    normalized payload, canonical form, and coalescing key."""
    bare = decode_request(json.dumps(
        {"op": "scenario", "scenario": "bounded_buys"}))
    spelled = decode_request(json.dumps(
        {"op": "scenario", "scenario": "bounded_buys",
         "engine": "columnar", "kernel": "bitset", "id": "different"}))
    assert dict(bare.payload) == dict(spelled.payload)
    assert coalesce_key(bare) == coalesce_key(spelled)


def test_distinct_configs_never_share_a_key():
    keys = set()
    for engine in ("columnar", "compiled", "interpretive"):
        for kernel in ("bitset", "frozenset"):
            keys.add(coalesce_key(decode_request(json.dumps(
                {"op": "scenario", "scenario": "bounded_buys",
                 "engine": engine, "kernel": kernel}))))
    assert len(keys) == 6


def test_fingerprint_matches_session():
    """The protocol's precomputed config fingerprint is the one a real
    Session of that configuration reports."""
    from repro.runner.batch import ENGINE_CONFIGS, KERNEL_CONFIGS
    from repro.session import Session

    session = Session(engine=ENGINE_CONFIGS["compiled"],
                      kernel=KERNEL_CONFIGS["frozenset"])
    assert fingerprint_for("compiled", "frozenset") == session.fingerprint


def test_every_op_has_a_request_case():
    covered = {json.loads(line)["op"] for _, line in VALID_REQUESTS}
    assert covered == set(OPS)


def test_response_roundtrip_and_record_rehydration():
    """encode_response lines parse back to the same object, and the
    embedded record rehydrates into a Decision equal to its source."""
    for name, response in RESPONSES:
        assert json.loads(encode_response(response)) == response
    decision = Decision.from_record(FIXED_RECORD)
    assert decision.record() == FIXED_RECORD
