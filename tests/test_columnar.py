"""Differential fuzz suite for the columnar data plane.

The contract of :mod:`repro.datalog.columns` is *bit-identical
semantics*: for every program and database, the columnar backend must
return exactly the :class:`~repro.datalog.engine.EvaluationResult` --
``idb`` rows, ``stages``, ``fixpoint`` -- of the row-at-a-time compiled
path and the interpretive reference, across naive/semi-naive/stage-
bounded execution.  Randomly generated programs (seed-deterministic,
from :mod:`repro.workloads.generators`) are crossed with chain / grid /
random EDB families and all three backends are compared on every cell.

Also covers the storage substrate itself: packed-key round-trips, the
unique-key index specialization, the cached EDB image lifecycle (and
its registration with the shared-cache registry), and the Database
fast paths (cached frozen views, bulk merge/restrict/copy).
"""

import pytest

from repro.core.instances import clear_shared_caches
from repro.datalog.columns import (
    ColumnStore,
    _EDB_IMAGES,
    _pack,
    _unpack,
    clear_edb_images,
    edb_image,
)
from repro.datalog.database import Database
from repro.datalog.engine import Engine, EngineConfig
from repro.datalog.errors import ArityError, ValidationError
from repro.datalog.magic import derived_fact_count, magic_query
from repro.datalog.parser import parse_program
from repro.programs.library import plain_transitive_closure
from repro.workloads import generators as gen
from repro.workloads.scenarios import LazyExpected, get_scenario, run_scenario

COLUMNAR = Engine(EngineConfig(backend="columnar"))
ROWS = Engine(EngineConfig(backend="rows"))
INTERPRETIVE = Engine(EngineConfig(compiled=False))
ENGINES = [COLUMNAR, ROWS, INTERPRETIVE]


def assert_identical(program, database, max_stages=None):
    """All three backends agree on idb rows, stages, and fixpoint."""
    results = [engine.evaluate(program, database, max_stages=max_stages)
               for engine in ENGINES]
    first = results[0]
    for other in results[1:]:
        assert first.idb == other.idb
        assert first.stages == other.stages
        assert first.fixpoint == other.fixpoint
    return first


def edb_for(program, edges):
    """A database feeding *edges* to every (binary) EDB predicate of
    *program* -- random programs draw predicate names from a pool, so
    the fixture adapts to whatever the draw produced."""
    predicates = tuple(sorted(program.edb_predicates)) or ("e",)
    return gen.edges_database(edges, predicates)


EDB_FAMILIES = [
    ("chain", gen.chain_edges(12)),
    ("grid", gen.grid_edges(4, 4)),
    ("random", gen.random_graph_edges(15, 40, seed=3)),
]


# ----------------------------------------------------------------------
# The fuzz matrix: random programs x EDB families x backends.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("family", [name for name, _ in EDB_FAMILIES])
def test_random_program_differential(seed, family):
    edges = dict(EDB_FAMILIES)[family]
    program = gen.random_program(seed)
    database = edb_for(program, edges)
    result = assert_identical(program, database)
    # Stage-bounded (naive rounds) agreement, including mid-fixpoint.
    assert_identical(program, database, max_stages=1)
    assert_identical(program, database, max_stages=2)
    assert result.fixpoint


@pytest.mark.parametrize("strategy", ["naive", "seminaive"])
def test_forced_strategy_differential(strategy):
    program = gen.random_program(5)
    database = edb_for(program, gen.chain_edges(8))
    results = [
        Engine(EngineConfig(strategy=strategy, compiled=True,
                            backend=backend)).evaluate(program, database)
        for backend in ("columnar", "rows")
    ]
    interp = Engine(EngineConfig(strategy=strategy,
                                 compiled=False)).evaluate(program, database)
    for result in results:
        assert result.idb == interp.idb
        assert result.stages == interp.stages
        assert result.fixpoint == interp.fixpoint


def test_random_programs_deterministic():
    from repro.datalog.printer import program_to_source

    for seed in range(8):
        assert program_to_source(gen.random_program(seed)) == \
            program_to_source(gen.random_program(seed))


# ----------------------------------------------------------------------
# Structured workloads: scale-shape programs, unsafe rules, constants,
# magic rewritings.
# ----------------------------------------------------------------------

def test_two_hop_matches_oracle():
    edges = gen.chain_edges(60)
    result = assert_identical(gen.two_hop_program(), edb_for(
        gen.two_hop_program(), edges))
    expected = {tuple(map(str, pair)) for pair in gen.two_hop_pairs(edges)}
    got = {tuple(c.value for c in row) for row in result.facts("p")}
    assert got == expected


def test_reach_matches_oracle():
    edges = gen.random_graph_edges(30, 70, seed=9)
    database = gen.edges_database(edges, ("e",))
    database.add("src", ("u0",))
    result = assert_identical(gen.single_source_reach(), database)
    got = {row[0].value for row in result.facts("r")}
    assert got == gen.reachable_from(edges, "u0")


def test_unsafe_rule_and_constants_differential():
    program = parse_program(
        """
        p(X, Y) :- e(X, Y).
        p(X, Y) :- q(X).
        q(X) :- e(X, v1).
        r(X, X) :- e(v0, X).
        """
    )
    database = gen.edges_database(gen.chain_edges(5), ("e",))
    assert_identical(program, database)
    assert_identical(program, database, max_stages=1)


def test_empty_database_and_missing_predicates():
    program = gen.single_source_reach()
    assert_identical(program, Database())
    lonely = Database.from_facts([("src", ("a",))])
    result = assert_identical(program, lonely)
    assert result.facts("r") == frozenset({(next(iter(
        lonely.relation("src")))[0],)})


def test_magic_rewriting_differential():
    program = plain_transitive_closure()
    database = gen.edges_database(gen.star_edges(4, 6), ("e",))
    answers = [magic_query(program, database, "p", "bf", ("r0_0",),
                           engine=engine) for engine in ENGINES]
    assert answers[0] == answers[1] == answers[2]
    counts = [derived_fact_count(program, database, "p", "bf", ("r0_0",),
                                 engine=engine) for engine in ENGINES]
    assert counts[0] == counts[1] == counts[2]


@pytest.mark.parametrize("engine", [COLUMNAR, ROWS],
                         ids=["columnar", "rows"])
def test_scale_smoke_scenario_ground_truth(engine):
    result = run_scenario(get_scenario("scale_chain_2hop_5k"), engine=engine)
    assert result["ok"], result["verdict"]


# ----------------------------------------------------------------------
# Storage substrate.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("arity", [0, 1, 2, 3, 4, 5])
def test_packed_keys_round_trip(arity):
    base = 11
    rows = [tuple((i * (j + 3)) % base for j in range(arity))
            for i in range(7)]
    cols = [list(col) for col in zip(*rows)] if arity else []
    keys = _pack(cols, len(rows), base)
    assert len(keys) == len(rows)
    back = _unpack(keys, arity, base)
    assert [tuple(col[i] for col in back) for i in range(len(rows))] == rows


def test_unique_index_specialization():
    db = gen.edges_database(gen.chain_edges(5), ("e",))  # unique source col
    image = edb_image(db)
    index, unique = image.index("e", 0)
    assert unique and all(isinstance(v, int) for v in index.values())
    fan = Database.from_facts([("f", ("a", "b")), ("f", ("a", "c")),
                               ("f", ("b", "c"))])
    index, unique = edb_image(fan).index("f", 0)
    assert not unique and all(isinstance(v, list) for v in index.values())


def test_edb_image_cache_and_invalidation():
    clear_edb_images()
    db = gen.edges_database(gen.chain_edges(4), ("e",))
    first = edb_image(db)
    assert edb_image(db) is first  # cached by identity + version
    db.add("e", ("x", "y"))
    second = edb_image(db)
    assert second is not first  # version moved -> rebuilt
    assert second.counts["e"] == first.counts["e"] + 1


def test_image_cache_registered_with_shared_caches():
    db = gen.edges_database(gen.chain_edges(3), ("e",))
    edb_image(db)
    assert _EDB_IMAGES
    clear_shared_caches()  # the registered cold-start hook
    assert not _EDB_IMAGES


def test_column_store_seed_rows_are_private():
    # IDB relations with extensional seed rows (magic-style) must not
    # leak derived rows back into the shared image.
    db = Database.from_facts([("p", ("a", "b")), ("e", ("b", "c"))])
    program = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- p(X, Z), e(Z, Y).")
    image_rows = edb_image(db).counts["p"]
    result = assert_identical(program, db)
    assert len(result.facts("p")) > image_rows
    assert edb_image(db).counts["p"] == image_rows


def test_column_store_duck_types_plan_resolution():
    program = parse_program("p(X) :- e(v0, X).")
    db = gen.edges_database(gen.chain_edges(3), ("e",))
    store = ColumnStore(db, idb=program.idb_predicates)
    from repro.datalog.plan import PlanCache

    rplan = PlanCache().plan(program.rules[0], None).resolve(store)
    store.seal()
    assert store.base > 0
    assert rplan.nregs >= 1


def test_backend_knob_validated():
    with pytest.raises(ValidationError, match="unknown backend"):
        EngineConfig(backend="gpu")


# ----------------------------------------------------------------------
# Database fast paths (satellite: cached views, bulk ops).
# ----------------------------------------------------------------------

def test_relation_view_cached_and_invalidated():
    db = gen.edges_database(gen.chain_edges(3), ("e",))
    view = db.relation("e")
    assert db.relation("e") is view  # cached frozen view
    db.add("e", ("x", "y"))
    fresh = db.relation("e")
    assert fresh is not view and len(fresh) == len(view) + 1
    assert db.version() > 0


def test_copy_merge_restrict_bulk_semantics():
    left = gen.edges_database(gen.chain_edges(4), ("e",))
    right = gen.edges_database([("x", "y")], ("e", "f"))
    merged = left.merge(right)
    assert merged.contains("e", ("x", "y"))
    assert merged.contains("e", ("v0", "v1"))
    assert merged.relation("f") == right.relation("f")
    assert not left.contains("e", ("x", "y"))  # merge did not mutate

    restricted = merged.restrict(["f"])
    assert restricted.predicates() == frozenset({"f"})
    assert restricted.relation("f") == right.relation("f")

    copied = left.copy()
    copied.add("e", ("q", "r"))
    assert not left.contains("e", ("q", "r"))
    assert left.relation("e") == Database.from_facts(
        (("e", row) for row in left.relation("e"))).relation("e")


def test_merge_arity_mismatch_still_raises():
    left = Database.from_facts([("e", ("a", "b"))])
    right = Database.from_facts([("e", ("a",))])
    with pytest.raises(ArityError):
        left.merge(right)


def test_lazy_expected_defers_the_thunk():
    calls = []

    def thunk():
        calls.append(1)
        return {"count": 3}

    lazy = LazyExpected(thunk)
    assert not calls  # registration is free
    assert dict(lazy) == {"count": 3}
    assert lazy["count"] == 3
    assert len(calls) == 1  # computed once, then cached
