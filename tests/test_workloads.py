"""Workload generators and the scenario registry.

Covers the two properties the subsystem exists to provide:

* **determinism** -- the same seed yields byte-identical programs,
  databases, and expected verdicts (generators never read global RNG
  state);
* **ground truth** -- the labels the generators attach by construction
  (bounded/unbounded, contained/not, expected evaluation rows) agree
  with the decision procedures under BOTH automaton kernels.
"""

import pytest

from repro.automata.kernel import KernelConfig
from repro.core.boundedness import decide_boundedness
from repro.core.containment import contained_in_ucq
from repro.core.equivalence import is_equivalent_to_nonrecursive
from repro.datalog.printer import program_to_source
from repro.workloads import (
    DECISION_KINDS,
    REGISTRY,
    bounded_program,
    bounded_rewriting,
    bounded_unbounded_pairs,
    get_scenario,
    random_graph_edges,
    reachable_pairs,
    run_scenario,
    same_depth_pair_count,
    same_depth_pairs,
    scenario_names,
    sirup,
    sirup_covering_union,
    unbounded_program,
)

BOTH_KERNELS = [KernelConfig(backend="bitset"), KernelConfig(backend="frozenset")]


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 7, 11, 12345])
def test_sirup_deterministic(seed):
    first = sirup(2, seed=seed)
    second = sirup(2, seed=seed)
    assert program_to_source(first) == program_to_source(second)
    assert str(sirup_covering_union(2, seed=seed)) == str(
        sirup_covering_union(2, seed=seed))


@pytest.mark.parametrize("seed", [0, 3, 99])
def test_bounded_family_deterministic(seed):
    assert program_to_source(bounded_program(2, seed=seed)) == \
        program_to_source(bounded_program(2, seed=seed))
    assert program_to_source(bounded_rewriting(2, seed=seed)) == \
        program_to_source(bounded_rewriting(2, seed=seed))
    assert program_to_source(unbounded_program(seed)) == \
        program_to_source(unbounded_program(seed))


def test_seeds_vary_programs():
    sources = {program_to_source(sirup(2, seed=s)) for s in range(8)}
    assert len(sources) > 1


def test_random_graph_deterministic_and_seed_sensitive():
    assert random_graph_edges(20, 40, seed=5) == random_graph_edges(20, 40, seed=5)
    assert random_graph_edges(20, 40, seed=5) != random_graph_edges(20, 40, seed=6)
    edges = random_graph_edges(10, 30, seed=1)
    assert len(edges) == len(set(edges)) == 30
    assert all(a != b for a, b in edges)


def test_pair_stream_deterministic():
    first = bounded_unbounded_pairs(6, seed=21)
    second = bounded_unbounded_pairs(6, seed=21)
    assert [(program_to_source(p), g, label) for p, g, label in first] == \
        [(program_to_source(p), g, label) for p, g, label in second]
    assert {label for _, _, label in bounded_unbounded_pairs(12, seed=2)} == \
        {True, False}


def test_scenario_builds_deterministic():
    # Payload programs must be value-equal across builds (Program is a
    # frozen dataclass), so worker processes reconstruct identical jobs.
    for name in scenario_names():
        scenario = get_scenario(name)
        first, second = scenario.build(), scenario.build()
        if "program" in first:
            assert first["program"] == second["program"]


# ----------------------------------------------------------------------
# Ground truth, both kernels.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
def test_generated_pairs_ground_truth(kernel):
    for program, goal, is_bounded in bounded_unbounded_pairs(4, seed=42):
        result = decide_boundedness(program, goal, max_depth=3, kernel=kernel)
        if is_bounded:
            assert result.bounded is True and result.depth == 2
        else:
            assert result.bounded is None


@pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
def test_bounded_pair_equivalence_ground_truth(kernel):
    program = bounded_program(2, seed=17)
    rewriting = bounded_rewriting(2, seed=17)
    result = is_equivalent_to_nonrecursive(program, rewriting, "p",
                                           kernel=kernel)
    assert result.equivalent


@pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
@pytest.mark.parametrize("seed", [1, 7])
def test_sirup_covering_ground_truth(kernel, seed):
    program = sirup(1, seed=seed)
    union = sirup_covering_union(1, seed=seed)
    assert contained_in_ucq(program, "p", union, kernel=kernel).contained


def test_structural_oracles_agree():
    # The closed-form count and the explicit pair set must match.
    assert len(same_depth_pairs(4, 2)) == same_depth_pair_count(4, 2)
    chain = [("a", "b"), ("b", "c")]
    assert reachable_pairs(chain) == {("a", "b"), ("b", "c"), ("a", "c")}


# ----------------------------------------------------------------------
# Registry invariants.
# ----------------------------------------------------------------------

def test_registry_shape():
    assert len(scenario_names()) >= 12
    decision = [n for n in scenario_names()
                if REGISTRY[n].kind in DECISION_KINDS]
    assert len(decision) >= 12
    assert scenario_names(kind="evaluation")
    assert scenario_names(tag="generated")


def test_unknown_scenario_error_lists_names():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no_such_scenario")


# Budgeted tag:stress scenarios may have a SIGALRM raise land inside a
# gc.callbacks hook (e.g. Hypothesis's timing hook), where CPython
# discards it as unraisable; repro.budget re-fires until one sticks, so
# the discarded raise is benign noise -- see tests/test_budget.py.
@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
@pytest.mark.parametrize("kernel", BOTH_KERNELS, ids=lambda k: k.backend)
def test_all_decision_scenarios_hit_ground_truth(kernel):
    """Every registered decision scenario's verdict matches its
    constructed expectation under both kernels (the registry's core
    guarantee; evaluation/magic kinds are covered kernel-independently
    in test_runner.py)."""
    for name in scenario_names():
        scenario = get_scenario(name)
        if scenario.kind not in DECISION_KINDS:
            continue
        result = run_scenario(scenario, kernel=kernel)
        assert result["ok"], (name, kernel.backend, result["verdict"],
                              dict(scenario.expected))
