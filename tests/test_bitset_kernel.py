"""Differential coverage for the bitset automaton kernel.

Every decision procedure ships two backends -- the bitset kernel
(interned states, bitmask subsets, memoized transitions) and the
original frozenset reference path.  These tests pin down that the two
agree: identical verdicts (and search statistics, where deterministic)
across the program library, randomized automata, and both containment
pathways, with every returned counterexample independently validated.
"""

import random

import pytest

from repro.automata.kernel import (
    BitAntichain,
    Interner,
    KernelConfig,
    default_kernel,
    iter_bits,
    resolve_kernel,
    set_default_kernel,
)
from repro.automata.tree import (
    LabeledTree,
    TreeAutomaton,
    find_counterexample_tree,
    path_tree,
)
from repro.automata.tree import contained_in as tree_contained_in
from repro.automata.word import NFA, enumerate_words, find_counterexample_word
from repro.automata.word import contained_in as nfa_contained_in
from repro.core.boundedness import decide_boundedness
from repro.core.containment import contained_in_ucq, counterexample_database
from repro.core.ptree_automaton import PTreeAutomaton
from repro.core.tree_containment import datalog_contained_in_ucq
from repro.core.word_path import datalog_contained_in_ucq_linear
from repro.cq.canonical import evaluate_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.engine import evaluate
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.unfold import expansion_union, unfold_nonrecursive
from repro.programs import (
    buys_bounded,
    buys_bounded_rewriting,
    chain_program,
    nonlinear_reach,
    transitive_closure,
    widget_certified,
)

BITSET = KernelConfig(backend="bitset")
BITSET_NOMEMO = KernelConfig(backend="bitset", memoize=False)
REFERENCE = KernelConfig(backend="frozenset")


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


# ----------------------------------------------------------------------
# Kernel primitives.
# ----------------------------------------------------------------------

class TestKernelPrimitives:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValidationError):
            KernelConfig(backend="simd")

    def test_config_is_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            KernelConfig().backend = "frozenset"

    def test_default_kernel_roundtrip(self):
        previous = set_default_kernel(REFERENCE)
        try:
            assert default_kernel() is REFERENCE
            assert resolve_kernel(None) is REFERENCE
            assert resolve_kernel(BITSET) is BITSET
        finally:
            set_default_kernel(previous)
        assert default_kernel() is previous

    def test_interner_ids_are_dense_and_stable(self):
        interner = Interner(["a", "b"])
        assert interner.id_of("a") == 0
        assert interner.intern("c") == 2
        assert interner.intern("a") == 0
        assert len(interner) == 3
        assert "b" in interner and "z" not in interner

    def test_mask_roundtrip(self):
        interner = Interner()
        mask = interner.mask_of(["x", "y", "z"])
        assert interner.subset_of(mask) == {"x", "y", "z"}
        assert list(iter_bits(0b1011)) == [0, 1, 3]

    def test_bit_antichain_keeps_minimal_masks(self):
        chain = BitAntichain()
        assert chain.insert("k", 0b0111, "w1")
        # Superset of a kept mask: dominated, rejected.
        assert not chain.insert("k", 0b1111, "w2")
        assert chain.dominated("k", 0b0111)
        # Subset: inserted, evicts the dominated entry.
        assert chain.insert("k", 0b0011, "w3")
        assert chain.items("k") == [(0b0011, "w3")]
        # Incomparable mask coexists.
        assert chain.insert("k", 0b1100, "w4")
        assert chain.total() == 2
        assert chain.keys() == ["k"]


# ----------------------------------------------------------------------
# Generic tree automata: bitset vs reference.
# ----------------------------------------------------------------------

def random_nta(rng: random.Random) -> TreeAutomaton:
    states = [f"s{i}" for i in range(3)]
    transitions = []
    for state in states:
        if rng.random() < 0.8:
            transitions.append((state, "a", ()))
        for _ in range(rng.randint(0, 3)):
            transitions.append(
                (state, "f", (rng.choice(states), rng.choice(states)))
            )
        if rng.random() < 0.5:
            transitions.append((state, "g", (rng.choice(states),)))
    return TreeAutomaton.build(
        ["f", "g", "a"], states, [rng.choice(states)], transitions
    )


class TestTreeAutomatonDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_containment_agrees(self, seed):
        rng = random.Random(seed)
        left, right = random_nta(rng), random_nta(rng)
        reference = find_counterexample_tree(left, right, kernel=REFERENCE)
        for config in (BITSET, BITSET_NOMEMO):
            witness = find_counterexample_tree(left, right, kernel=config)
            assert (witness is None) == (reference is None)
            if witness is not None:
                assert left.accepts(witness)
                assert not right.accepts(witness)

    @pytest.mark.parametrize("seed", range(10))
    def test_exact_mode_agrees_with_antichain(self, seed):
        rng = random.Random(seed)
        left, right = random_nta(rng), random_nta(rng)
        pruned = tree_contained_in(left, right, use_antichain=True, kernel=BITSET)
        exact = tree_contained_in(left, right, use_antichain=False, kernel=BITSET)
        assert pruned == exact

    def test_productive_states_cached_and_correct(self):
        rng = random.Random(11)
        automaton = random_nta(rng)
        first = automaton.productive_states()
        assert automaton.productive_states() is first  # cached on the instance
        # The cache does not change the emptiness verdict.
        assert automaton.is_empty() == (not (first & automaton.initial))

    @pytest.mark.parametrize("seed", range(8))
    def test_productive_states_reference_backend_agrees(self, seed):
        # Two identical automata (same seed), one evaluated under each
        # default backend: the cached productive sets must agree.
        left = random_nta(random.Random(seed))
        right = random_nta(random.Random(seed))
        assert left.transitions == right.transitions
        previous = set_default_kernel(REFERENCE)
        try:
            reference = left.productive_states()
        finally:
            set_default_kernel(previous)
        assert reference == right.productive_states()

    @pytest.mark.parametrize("seed", range(8))
    def test_reachable_subsets_agree_across_kernels(self, seed):
        from repro.automata.tree import BottomUpDeterministic

        rng = random.Random(seed)
        det = BottomUpDeterministic(random_nta(rng))
        assert det.reachable_subsets(max_subsets=512, kernel=BITSET) == \
            det.reachable_subsets(max_subsets=512, kernel=REFERENCE)

    def test_reachable_subsets_matches_seed_semantics(self):
        # left_comb from the tree-automata tests: the subset automaton
        # has a known, small reachable state space.
        automaton = TreeAutomaton.build(
            ["f", "a"], ["s", "leaf"], ["s"],
            [("s", "f", ("s", "leaf")), ("s", "a", ()), ("leaf", "a", ())],
        )
        from repro.automata.tree import complement

        det = complement(automaton)
        subsets = det.reachable_subsets(max_subsets=64)
        assert frozenset(["s", "leaf"]) in subsets
        assert all(isinstance(subset, frozenset) for subset in subsets)


class TestDeepTrees:
    def test_labeled_tree_methods_are_iterative(self):
        deep = path_tree(["g"] * 4999 + ["a"])
        assert deep.size() == 5000
        assert deep.depth() == 5000
        assert sum(1 for _ in deep.nodes()) == 5000

    def test_nodes_stays_preorder(self):
        tree = LabeledTree("f", (LabeledTree("a"), LabeledTree("g", (LabeledTree("b"),))))
        assert [node.label for node in tree.nodes()] == ["f", "a", "g", "b"]

    def test_acceptance_on_deep_tree(self):
        automaton = TreeAutomaton.build(
            ["g", "a"], ["s"], ["s"],
            [("s", "g", ("s",)), ("s", "a", ())],
        )
        deep = path_tree(["g"] * 4999 + ["a"])
        assert automaton.accepts(deep)

    def test_acceptance_on_shared_subtree_dag(self):
        # The counterexample searches return witnesses whose subtrees
        # are shared; acceptance must evaluate each node once, not once
        # per root-to-node path (2^200 here).
        automaton = TreeAutomaton.build(
            ["f", "a"], ["s"], ["s"],
            [("s", "f", ("s", "s")), ("s", "a", ())],
        )
        node = LabeledTree("a")
        for _ in range(200):
            node = LabeledTree("f", (node, node))
        assert automaton.accepts(node)


# ----------------------------------------------------------------------
# Word automata: bitset vs reference.
# ----------------------------------------------------------------------

def random_nfa(rng: random.Random, states: int = 3) -> NFA:
    names = [f"s{i}" for i in range(states)]
    transitions = []
    for source in names:
        for symbol in "ab":
            for target in names:
                if rng.random() < 0.35:
                    transitions.append((source, symbol, target))
    return NFA.build(
        "ab",
        names,
        [rng.choice(names)],
        [n for n in names if rng.random() < 0.5] or [names[-1]],
        transitions,
    )


class TestWordAutomatonDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_containment_agrees(self, seed):
        rng = random.Random(seed)
        left, right = random_nfa(rng), random_nfa(rng)
        reference = find_counterexample_word(left, right, kernel=REFERENCE)
        for config in (BITSET, BITSET_NOMEMO):
            witness = find_counterexample_word(left, right, kernel=config)
            assert (witness is None) == (reference is None)
            if witness is not None:
                assert left.accepts(witness)
                assert not right.accepts(witness)

    @pytest.mark.parametrize("seed", range(10))
    def test_determinize_identical_across_kernels(self, seed):
        rng = random.Random(seed)
        nfa = random_nfa(rng)
        bitset = nfa.determinize(kernel=BITSET)
        reference = nfa.determinize(kernel=REFERENCE)
        assert bitset.states == reference.states
        assert bitset.initial == reference.initial
        assert bitset.accepting == reference.accepting
        assert bitset.transitions == reference.transitions

    @pytest.mark.parametrize("seed", range(6))
    def test_complement_language_unchanged(self, seed):
        rng = random.Random(seed)
        nfa = random_nfa(rng)
        complemented = nfa.complement()
        accepted = set(enumerate_words(nfa, 4))
        rejected = set(enumerate_words(complemented, 4))
        assert accepted.isdisjoint(rejected)
        for length in range(5):
            total = sum(1 for word in accepted if len(word) == length)
            total += sum(1 for word in rejected if len(word) == length)
            assert total == 2 ** length


# ----------------------------------------------------------------------
# The decision stack: program containment / boundedness.
# ----------------------------------------------------------------------

def covering_union() -> UnionOfConjunctiveQueries:
    return UnionOfConjunctiveQueries(
        [
            cq("p(X0, X1)", "e0(X0, X1)"),
            cq("p(X0, X1)", "g0(X0, Z)"),
        ]
    )


TREE_CASES = [
    ("tc_depth1", transitive_closure, "p",
     lambda program: expansion_union(program, "p", 1)),
    ("tc_depth2", transitive_closure, "p",
     lambda program: expansion_union(program, "p", 2)),
    ("chain1_covered", lambda: chain_program(1), "p",
     lambda program: covering_union()),
    ("buys_depth2", buys_bounded, "buys",
     lambda program: expansion_union(program, "buys", 2)),
    ("widget_depth2", widget_certified, "ok",
     lambda program: expansion_union(program, "ok", 2)),
    ("nonlinear_depth2", lambda: nonlinear_reach(1), "p",
     lambda program: expansion_union(program, "p", 2)),
]


class TestContainmentDifferential:
    @pytest.mark.parametrize(
        "name,make_program,goal,make_union",
        TREE_CASES, ids=[case[0] for case in TREE_CASES],
    )
    def test_tree_pathway_agrees(self, name, make_program, goal, make_union):
        program = make_program()
        union = make_union(program)
        bitset = datalog_contained_in_ucq(program, goal, union, kernel=BITSET)
        reference = datalog_contained_in_ucq(program, goal, union, kernel=REFERENCE)
        assert bitset.contained == reference.contained
        # Both backends sweep the same transitions in the same order,
        # so the search statistics must agree exactly.
        assert bitset.stats == reference.stats
        for result in (bitset, reference):
            if not result.contained:
                self._check_refutation(result, program, goal, union)

    @staticmethod
    def _check_refutation(result, program, goal, union):
        assert PTreeAutomaton(program, goal).accepts_proof_tree(result.witness)
        database, row = counterexample_database(result, program)
        assert row in evaluate(program, database).facts(goal)
        assert row not in evaluate_ucq(union, database)

    @pytest.mark.parametrize("depth", [1, 2])
    def test_word_pathway_agrees(self, depth):
        program = transitive_closure()
        union = expansion_union(program, "p", depth)
        bitset = datalog_contained_in_ucq_linear(program, "p", union, kernel=BITSET)
        reference = datalog_contained_in_ucq_linear(program, "p", union, kernel=REFERENCE)
        assert bitset.contained == reference.contained == False
        for result in (bitset, reference):
            self._check_refutation(result, program, "p", union)

    def test_word_pathway_positive_case_agrees(self):
        program = buys_bounded()
        union = expansion_union(program, "buys", 2)
        bitset = contained_in_ucq(program, "buys", union, method="word", kernel=BITSET)
        reference = contained_in_ucq(program, "buys", union, method="word",
                                     kernel=REFERENCE)
        assert bitset.contained and reference.contained

    def test_antichain_ablation_agrees_across_kernels(self):
        program = transitive_closure()
        union = expansion_union(program, "p", 2)
        for use_antichain in (True, False):
            bitset = datalog_contained_in_ucq(
                program, "p", union, use_antichain=use_antichain, kernel=BITSET
            )
            reference = datalog_contained_in_ucq(
                program, "p", union, use_antichain=use_antichain, kernel=REFERENCE
            )
            assert bitset.contained == reference.contained == False

    def test_nonrecursive_equivalence_agrees(self):
        from repro.core.equivalence import is_equivalent_to_nonrecursive

        program = buys_bounded()
        rewriting = buys_bounded_rewriting()
        bitset = is_equivalent_to_nonrecursive(program, rewriting, "buys",
                                               kernel=BITSET)
        reference = is_equivalent_to_nonrecursive(program, rewriting, "buys",
                                                  kernel=REFERENCE)
        assert bitset.equivalent == reference.equivalent == True

    def test_boundedness_agrees(self):
        program = buys_bounded()
        bitset = decide_boundedness(program, "buys", max_depth=3, kernel=BITSET)
        reference = decide_boundedness(program, "buys", max_depth=3,
                                       kernel=REFERENCE)
        assert bitset.bounded and reference.bounded
        assert bitset.depth == reference.depth == 2

    def test_default_kernel_is_bitset_and_switchable(self):
        assert default_kernel().bitset
        program = transitive_closure()
        union = expansion_union(program, "p", 1)
        previous = set_default_kernel(REFERENCE)
        try:
            result = datalog_contained_in_ucq(program, "p", union)
        finally:
            set_default_kernel(previous)
        assert not result.contained
