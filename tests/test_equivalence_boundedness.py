"""Theorem 6.5 equivalence and the boundedness semi-decision tests."""

import pytest

from repro.core.boundedness import bounded_at_depth, decide_boundedness
from repro.core.equivalence import equivalent_to_ucq, is_equivalent_to_nonrecursive
from repro.cq.canonical import evaluate_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.engine import evaluate
from repro.datalog.errors import NotNonrecursiveError, ValidationError
from repro.datalog.parser import parse_atom, parse_program
from repro.programs import (
    buys_bounded,
    buys_bounded_rewriting,
    buys_recursive,
    buys_recursive_rewriting,
    transitive_closure,
    widget_certified,
    widget_certified_rewriting,
)


class TestExample11:
    """The paper's flagship example, both halves."""

    def test_pi1_equivalent(self):
        result = is_equivalent_to_nonrecursive(
            buys_bounded(), buys_bounded_rewriting(), goal="buys"
        )
        assert result.equivalent
        assert result.forward_holds and result.backward_holds

    def test_pi2_not_equivalent(self):
        result = is_equivalent_to_nonrecursive(
            buys_recursive(), buys_recursive_rewriting(), goal="buys"
        )
        assert not result.equivalent
        assert result.backward_holds  # the rewriting IS contained in Pi2
        assert not result.forward_holds
        assert result.forward_witness is not None

    def test_pi2_witness_is_semantic(self):
        result = is_equivalent_to_nonrecursive(
            buys_recursive(), buys_recursive_rewriting(), goal="buys"
        )
        from repro.core.containment import counterexample_database
        from repro.core.tree_containment import ContainmentResult
        from repro.datalog.unfold import unfold_nonrecursive

        containment = ContainmentResult(False, result.forward_witness)
        db, row = counterexample_database(containment, buys_recursive())
        union = unfold_nonrecursive(buys_recursive_rewriting(), "buys")
        assert row in evaluate(buys_recursive(), db).facts("buys")
        assert row not in evaluate_ucq(union, db)

    def test_word_pathway_matches(self):
        for method in ("word", "tree"):
            assert is_equivalent_to_nonrecursive(
                buys_bounded(), buys_bounded_rewriting(), goal="buys", method=method
            ).equivalent
            assert not is_equivalent_to_nonrecursive(
                buys_recursive(), buys_recursive_rewriting(), goal="buys", method=method
            ).equivalent


class TestEquivalenceAPI:
    def test_rejects_recursive_second_program(self):
        with pytest.raises(NotNonrecursiveError):
            is_equivalent_to_nonrecursive(
                transitive_closure(), transitive_closure(), goal="p"
            )

    def test_rejects_arity_mismatch(self):
        nr = parse_program("buys(X) :- likes(X, X).")
        with pytest.raises(ValidationError):
            is_equivalent_to_nonrecursive(buys_bounded(), nr, goal="buys")

    def test_different_goal_names(self):
        nr = parse_program(
            """
            purchases(X, Y) :- likes(X, Y).
            purchases(X, Y) :- trendy(X), likes(Z, Y).
            """
        )
        result = is_equivalent_to_nonrecursive(
            buys_bounded(), nr, goal="buys", nonrecursive_goal="purchases"
        )
        assert result.equivalent

    def test_equivalent_to_ucq_direct(self):
        union = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery(parse_atom("q(X0, X1)"), (parse_atom("likes(X0, X1)"),)),
                ConjunctiveQuery(
                    parse_atom("q(X0, X1)"),
                    (parse_atom("trendy(X0)"), parse_atom("likes(Z, X1)")),
                ),
            ]
        )
        assert equivalent_to_ucq(buys_bounded(), "buys", union).equivalent

    def test_stats_populated(self):
        result = is_equivalent_to_nonrecursive(
            buys_bounded(), buys_bounded_rewriting(), goal="buys"
        )
        assert result.stats["union_disjuncts"] == 2

    def test_domain_example(self):
        assert is_equivalent_to_nonrecursive(
            widget_certified(), widget_certified_rewriting(), goal="ok"
        ).equivalent


class TestBoundedness:
    def test_pi1_bounded_at_depth_2(self):
        program = buys_bounded()
        assert not bounded_at_depth(program, "buys", 1)
        assert bounded_at_depth(program, "buys", 2)
        result = decide_boundedness(program, "buys", max_depth=4)
        assert result.bounded and result.depth == 2

    def test_witness_union_is_equivalent(self):
        program = buys_bounded()
        result = decide_boundedness(program, "buys", max_depth=4)
        assert equivalent_to_ucq(program, "buys", result.witness_union).equivalent

    def test_tc_not_certified(self):
        result = decide_boundedness(transitive_closure(), "p", max_depth=3)
        assert result.bounded is None

    def test_pi2_not_certified(self):
        result = decide_boundedness(buys_recursive(), "buys", max_depth=3)
        assert result.bounded is None

    def test_nonrecursive_program_certified(self):
        program = parse_program(
            """
            q(X) :- mid(X).
            mid(X) :- base(X).
            """
        )
        result = decide_boundedness(program, "q", max_depth=4)
        assert result.bounded

    def test_trivially_empty_goal(self):
        program = parse_program("q(X) :- q(X).")
        result = decide_boundedness(program, "q", max_depth=3)
        # No expansion exists; the relation is empty, hence bounded...
        # but with no witness union our procedure reports unknown
        # rather than fabricate an empty certificate at depth 0.
        assert result.bounded is None or result.bounded
