"""Nonlinear-program tests for the Proposition 5.10 automaton.

Nonlinear rules make the proof trees branch, exercising the transition
conditions the linear tests cannot reach: distributing unmapped query
atoms across several children (condition 3's image guessing for
variables split over subtrees) and condition 4's flow-through checks.
"""

import pytest

from repro.core.cq_automaton import CQAutomaton
from repro.core.tree_containment import datalog_contained_in_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_atom, parse_program
from repro.trees.proof import proof_trees
from repro.trees.strong import brute_force_contained, has_strong_containment_mapping

from .test_core_automata import _automaton_accepts


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


@pytest.fixture(scope="module")
def doubling():
    """Nonlinear transitive closure: proof trees are binary."""
    return parse_program(
        """
        p(X, Y) :- p(X, Z), p(Z, Y).
        p(X, Y) :- e(X, Y).
        """
    )


class TestNonlinearOracle:
    def test_automaton_agrees_with_strong_mapping(self, doubling):
        queries = [
            cq("p(X0, X1)", "e(X0, X1)"),
            cq("p(X0, X1)", "e(X0, M)", "e(M, X1)"),   # splits across children
            cq("p(X0, X1)", "e(X0, M)"),
            cq("p(X0, X1)", "e(M, M)"),
            cq("p(X0, X0)", "e(X0, X0)"),
        ]
        trees = list(proof_trees(doubling, "p", 2))
        assert trees
        for theta in queries:
            automaton = CQAutomaton(doubling, "p", theta)
            for tree in trees:
                expected = has_strong_containment_mapping(theta, tree, doubling)
                got = _automaton_accepts(automaton, doubling, tree)
                assert got == expected, (theta, str(tree))

    def test_split_query_accepts_branching_tree(self, doubling):
        """The 2-path query must map into the binary depth-2 proof tree
        p(a,c) <- p(a,b), p(b,c) by sending one atom into each child --
        the automaton has to GUESS the image of M (condition 3)."""
        from repro.datalog.terms import Variable

        a, b, c = (Variable(f"_pv{i}") for i in range(3))
        theta = cq("p(X0, X1)", "e(X0, M)", "e(M, X1)")
        automaton = CQAutomaton(doubling, "p", theta)
        matching = [
            t for t in proof_trees(doubling, "p", 2, root_args=(a, c))
            if t.height() == 2 and len(t.children) == 2
            and t.children[0].atom.args == (a, b)
        ]
        assert matching
        tree = matching[0]
        assert _automaton_accepts(automaton, doubling, tree)

    def test_containment_decisions(self, doubling):
        # covered: every expansion is an e-path out of X0.
        assert datalog_contained_in_ucq(
            doubling, "p", UnionOfConjunctiveQueries([cq("p(X0, X1)", "e(X0, M)")])
        ).contained
        # not covered: paths of length 3 escape {1, 2, 4}-unions.
        union = UnionOfConjunctiveQueries(
            [
                cq("p(X0, X1)", "e(X0, X1)"),
                cq("p(X0, X1)", "e(X0, A)", "e(A, X1)"),
                cq("p(X0, X1)", "e(X0, A)", "e(A, B)", "e(B, C)", "e(C, X1)"),
            ]
        )
        result = datalog_contained_in_ucq(doubling, "p", union)
        assert not result.contained
        # The witness must be a length-3 path expansion.
        witness_query = result.witness.to_query(doubling)
        assert len(witness_query.body) == 3

    def test_brute_force_agreement(self, doubling):
        union = UnionOfConjunctiveQueries(
            [cq("p(X0, X1)", "e(X0, X1)"), cq("p(X0, X1)", "e(X0, A)", "e(A, X1)")]
        )
        auto = datalog_contained_in_ucq(doubling, "p", union).contained
        brute, _ = brute_force_contained(doubling, "p", union, max_height=3)
        assert auto == brute == False  # noqa: E712

    def test_same_generation_containment(self):
        sg = parse_program(
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            """
        )
        # Every sg fact is witnessed by a flat edge somewhere.
        assert datalog_contained_in_ucq(
            sg, "sg", UnionOfConjunctiveQueries([cq("sg(X0, X1)", "flat(A, B)")])
        ).contained
        # But not by a flat edge incident to X0.
        result = datalog_contained_in_ucq(
            sg, "sg", UnionOfConjunctiveQueries([cq("sg(X0, X1)", "flat(X0, B)")])
        )
        assert not result.contained
