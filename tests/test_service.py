"""Behavioural tests for the decision service daemon.

Each test embeds a live server (:func:`repro.service.start_in_thread`)
on a throwaway unix socket and drives it with the blocking client over
real sockets -- the full wire path, not unit shims.  Determinism comes
from chaos ``hang`` faults (a leader held in flight for a known
duration is a window to pile joiners or saturate admission in) and
``crash`` faults with ``attempt=*`` (a request that can never succeed
must quarantine after exactly ``max_attempts`` tries).

The three core properties pinned here, per the service's contract:

* **Coalescing**: N concurrent identical requests cost exactly one
  Session computation (asserted via ``cache_stats()`` miss deltas
  *and* coalescer counters) and yield bit-identical decision records;
  distinct config fingerprints never coalesce.
* **Chaos under load**: a crash-poisoned request gets a typed error
  while every other in-flight request completes bit-identical to a
  serial rerun -- zero verdict divergences.
* **Admission**: a full service answers deterministic typed overload
  responses, then drains and recovers without a restart.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.runner.batch import ENGINE_CONFIGS, KERNEL_CONFIGS
from repro.service import PoolConfig, ServiceConfig, start_in_thread
from repro.service.client import ServiceClient
from repro.session import Session


@pytest.fixture
def sock_path(tmp_path):
    return str(tmp_path / "repro.sock")


def _serve(sock_path, **pool_kwargs):
    """An embedded thread-executor server (the deterministic mode:
    chaos crashes simulate, deadlines are cooperative-tier)."""
    pool_kwargs.setdefault("workers", 1)
    pool_kwargs.setdefault("executor", "thread")
    config = ServiceConfig(
        socket_path=sock_path,
        capacity=pool_kwargs.pop("capacity", 64),
        result_cache=pool_kwargs.pop("result_cache", 0),
        result_cache_ttl_s=pool_kwargs.pop("result_cache_ttl_s", None),
        pool=PoolConfig(**pool_kwargs))
    return start_in_thread(config)


def _serial_record(scenario: str) -> dict:
    """The scenario's decision record from a fresh serial Session --
    the ground truth served responses must match bit-for-bit."""
    session = Session(engine=ENGINE_CONFIGS["columnar"],
                      kernel=KERNEL_CONFIGS["bitset"], cache="private",
                      name="serial-control")
    return session.run_scenario(scenario).without_payload().record()


def _stable_view(record: dict) -> dict:
    """The deterministic slice of a decision record: everything except
    wall-clock timings and service bookkeeping."""
    view = {key: record.get(key) for key in
            ("kind", "verdict", "ok", "checksum", "fingerprint")}
    stats = dict(record.get("stats") or {})
    stats.pop("retried_after", None)  # transparent recovery bookkeeping
    view["stats"] = stats
    return view


def _scope_misses(status: dict) -> int:
    """Total Session cache misses across every worker session the
    server can see (thread mode: the whole pool)."""
    return sum(cache["misses"]
               for entry in status["worker_sessions"]
               for cache in entry["scope"].values())


# ----------------------------------------------------------------------
# Coalescing.
# ----------------------------------------------------------------------

def test_coalescing_single_computation(sock_path):
    """N concurrent identical requests: one Session computation, one
    coalescer lead, N-1 joins, bit-identical decision records."""
    n = 8
    # The leader hangs 0.6s before computing (no deadline set, so the
    # hang completes normally): a deterministic window in which every
    # other identical request must coalesce rather than recompute.
    with _serve(sock_path,
                chaos="hang:scenario=bounded_buys,attempt=*,seconds=0.6"):
        with ServiceClient(socket_path=sock_path) as client:
            before = client.request({"op": "status"})["status"]
            responses = client.request_many(
                [{"op": "scenario", "scenario": "bounded_buys"}
                 for _ in range(n)])
            after = client.request({"op": "status"})["status"]

    assert [r["type"] for r in responses] == ["decision"] * n
    assert sorted(r["coalesced"] for r in responses) == \
        [False] + [True] * (n - 1)
    # Exactly one underlying computation...
    assert after["coalescer"]["computed"] - \
        before["coalescer"]["computed"] == 1
    assert after["coalescer"]["joined"] - before["coalescer"]["joined"] \
        == n - 1
    assert after["pool"]["submitted"] - before["pool"]["submitted"] == 1
    # ... confirmed at the Session layer: the cache-miss delta is one
    # run's worth, not n runs' worth (and the serial control says how
    # much one run's worth is).
    serial = Session(engine=ENGINE_CONFIGS["columnar"],
                     kernel=KERNEL_CONFIGS["bitset"], cache="private",
                     name="coalesce-control")
    serial.run_scenario("bounded_buys")
    one_run = sum(cache["misses"]
                  for cache in serial.cache_stats()["scope"].values())
    assert _scope_misses(after) - _scope_misses(before) == one_run
    # Bit-identical payloads: every response carries the same record.
    blobs = {json.dumps(r["decision"], sort_keys=True) for r in responses}
    assert len(blobs) == 1
    # Joiners never consume admission slots: one admit for n requests.
    assert after["admission"]["admitted"] - \
        before["admission"]["admitted"] == 1


def test_distinct_fingerprints_never_coalesce(sock_path):
    """The same question under different kernel configs is a different
    computation -- no coalescing across config fingerprints."""
    with _serve(sock_path,
                chaos="hang:scenario=bounded_buys,attempt=*,seconds=0.3"):
        with ServiceClient(socket_path=sock_path) as client:
            before = client.request({"op": "status"})["status"]
            responses = client.request_many([
                {"op": "scenario", "scenario": "bounded_buys",
                 "kernel": "bitset"},
                {"op": "scenario", "scenario": "bounded_buys",
                 "kernel": "frozenset"},
            ])
            after = client.request({"op": "status"})["status"]
    assert [r["type"] for r in responses] == ["decision", "decision"]
    assert [r["coalesced"] for r in responses] == [False, False]
    assert after["coalescer"]["computed"] - \
        before["coalescer"]["computed"] == 2
    assert after["coalescer"]["joined"] == before["coalescer"]["joined"]
    # Same verdict, different config fingerprint.
    a, b = (r["decision"] for r in responses)
    assert a["verdict"] == b["verdict"]
    assert a["fingerprint"] != b["fingerprint"]


def test_coalesced_joiners_share_typed_errors(sock_path):
    """A poisoned computation fails once; its joiners receive the same
    typed error instead of recomputing the poison.  The poison is a
    hang under a request deadline, so the leader is deterministically
    in flight while the joiners arrive."""
    with _serve(sock_path, max_attempts=1,
                chaos="hang:scenario=bounded_buys,attempt=*,seconds=30"):
        with ServiceClient(socket_path=sock_path) as client:
            responses = client.request_many(
                [{"op": "scenario", "scenario": "bounded_buys",
                  "deadline_s": 0.5} for _ in range(4)])
            status = client.request({"op": "status"})["status"]
    assert [r["type"] for r in responses] == ["error"] * 4
    assert {r["error"] for r in responses} == {"timeout"}
    assert status["pool"]["submitted"] == 1  # the poison ran once
    assert status["errors"] == 4  # but every waiter was answered


# ----------------------------------------------------------------------
# Chaos under load.
# ----------------------------------------------------------------------

INNOCENTS = ("contain_chain_w1", "equiv_buys_bounded", "eval_sg_tree_d5")


def test_chaos_under_load_process_pool(sock_path):
    """A real worker crash (process executor, ``os._exit``) mid-load:
    the poisoned client gets a typed ``crash`` error after exactly
    ``max_attempts`` tries; every innocent in-flight request completes
    bit-identical to a serial rerun -- zero verdict divergences."""
    max_attempts = 3
    with _serve(sock_path, workers=2, executor="process",
                max_attempts=max_attempts,
                chaos="crash:scenario=bounded_buys,attempt=*"):
        with ServiceClient(socket_path=sock_path, timeout=300.0) as client:
            batch = [{"op": "scenario", "scenario": "bounded_buys",
                      "id": "poisoned"}]
            batch += [{"op": "scenario", "scenario": name, "id": name}
                      for name in INNOCENTS]
            responses = {r["id"]: r for r in client.request_many(batch)}
            status = client.request({"op": "status"})["status"]

    poisoned = responses["poisoned"]
    assert poisoned["type"] == "error"
    assert poisoned["error"] == "crash"
    assert poisoned["attempts"] == max_attempts
    assert status["pool"]["quarantined"] == 1
    assert status["pool"]["respawns"] >= 1  # the pool really broke

    divergences = []
    for name in INNOCENTS:
        response = responses[name]
        assert response["type"] == "decision", (name, response)
        if _stable_view(response["decision"]) != \
                _stable_view(_serial_record(name)):
            divergences.append(name)
    assert divergences == []


def test_simulated_crash_quarantine_thread_pool(sock_path):
    """The same quarantine discipline in the embedded thread mode,
    where chaos crashes raise SimulatedWorkerCrash instead of killing
    anything -- and an unaffected request on the same connection still
    completes."""
    with _serve(sock_path, max_attempts=2,
                chaos="crash:scenario=bounded_buys,attempt=*"):
        with ServiceClient(socket_path=sock_path) as client:
            responses = client.request_many([
                {"op": "scenario", "scenario": "bounded_buys", "id": "bad"},
                {"op": "scenario", "scenario": "contain_chain_w1",
                 "id": "good"},
            ])
    by_id = {r["id"]: r for r in responses}
    assert by_id["bad"]["type"] == "error"
    assert by_id["bad"]["error"] == "crash"
    assert by_id["bad"]["attempts"] == 2
    assert by_id["good"]["type"] == "decision"
    assert by_id["good"]["decision"]["ok"] is True


def test_deadline_is_a_typed_timeout(sock_path):
    """A planted hang under a request deadline surfaces as a typed
    ``timeout`` error, not a stuck connection."""
    with _serve(sock_path, max_attempts=1,
                chaos="hang:scenario=bounded_buys,attempt=*,seconds=30"):
        with ServiceClient(socket_path=sock_path) as client:
            started = time.perf_counter()
            response = client.request({"op": "scenario",
                                       "scenario": "bounded_buys",
                                       "deadline_s": 0.3})
            elapsed = time.perf_counter() - started
    assert response["type"] == "error"
    assert response["error"] == "timeout"
    assert elapsed < 10.0  # interrupted the 30s hang, not waited it out


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------

def test_admission_overload_and_recovery(sock_path):
    """Fill the bounded queue: requests beyond capacity get
    deterministic typed overload responses (never enqueued), and once
    the backlog drains the same server admits again -- no restart."""
    retry_after_ms = 25.0
    with _serve(sock_path, capacity=2, max_attempts=1,
                chaos="hang:scenario=eval_tc_chain_120,attempt=*,"
                      "seconds=1.5") as handle:
        handle.server.admission.retry_after_ms = retry_after_ms
        with ServiceClient(socket_path=sock_path) as client:
            # Saturate: the hanging request holds the single worker,
            # the filler holds the second (and last) admission slot.
            slow_id = client.send({"op": "scenario",
                                   "scenario": "eval_tc_chain_120",
                                   "id": "slow"})
            filler_id = client.send({"op": "scenario",
                                     "scenario": "contain_chain_w1",
                                     "id": "filler"})
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = client.request({"op": "status"})["status"]
                if status["admission"]["depth"] == 2:
                    break
                time.sleep(0.01)
            assert status["admission"]["depth"] == 2

            # Distinct requests (distinct keys: no coalescing) are now
            # refused with the typed overload response, deterministically.
            overloads = client.request_many([
                {"op": "scenario", "scenario": "equiv_buys_bounded"},
                {"op": "scenario", "scenario": "eval_sg_tree_d5"},
                {"op": "scenario", "scenario": "magic_star_8x12"},
            ])
            for response in overloads:
                assert response["type"] == "overload"
                assert response["error"] == "overload"
                assert response["queue_depth"] == 2
                assert response["capacity"] == 2
                assert response["retry_after_ms"] == retry_after_ms

            # Control ops never queue behind decisions.
            assert client.request({"op": "status"})["type"] == "status"

            # Drain: both admitted requests complete...
            results = {}
            while len(results) < 2:
                response = client.recv()
                if response.get("id") in (slow_id, filler_id):
                    results[response["id"]] = response
            assert all(r["type"] == "decision" for r in results.values())

            # ... and the same server admits fresh work again.
            recovered = client.request({"op": "scenario",
                                        "scenario": "equiv_buys_bounded"})
            assert recovered["type"] == "decision"
            status = client.request({"op": "status"})["status"]
            assert status["admission"]["depth"] == 0
            assert status["admission"]["rejected"] == 3
            assert status["admission"]["high_water"] == 2


# ----------------------------------------------------------------------
# Protocol lifecycle on a live socket.
# ----------------------------------------------------------------------

def test_malformed_lines_do_not_kill_the_connection(sock_path):
    """Garbage, unknown ops, and bad fields each get a typed
    bad-request (with the id echoed when parseable) -- and the same
    connection then serves a valid request."""
    with _serve(sock_path):
        with ServiceClient(socket_path=sock_path) as client:
            client._sock.sendall(b"this is not json\n")
            response = client.recv()
            assert (response["type"], response["error"]) == \
                ("error", "bad-request")
            assert response["id"] is None

            client._sock.sendall(
                b'{"op": "warp", "id": "w1"}\n')
            response = client.recv()
            assert (response["type"], response["error"]) == \
                ("error", "bad-request")
            assert response["id"] == "w1"  # echoed from the bad line

            response = client.request({"op": "scenario",
                                       "scenario": "bounded_buys"})
            assert response["type"] == "decision"


def test_blank_lines_are_ignored(sock_path):
    with _serve(sock_path):
        with ServiceClient(socket_path=sock_path) as client:
            client._sock.sendall(b"\n\n")
            assert client.request({"op": "status"})["type"] == "status"


def test_status_shape(sock_path):
    with _serve(sock_path):
        with ServiceClient(socket_path=sock_path) as client:
            response = client.request({"op": "status", "id": 42})
    assert response["type"] == "status"
    assert response["id"] == 42
    status = response["status"]
    assert status["protocol"] == 1
    assert set(status) >= {"uptime_s", "served", "errors", "admission",
                           "coalescer", "pool", "worker_sessions"}
    assert status["pool"]["executor"] == "thread"


def test_shutdown_op_stops_the_server(sock_path):
    handle = _serve(sock_path)
    try:
        with ServiceClient(socket_path=sock_path) as client:
            assert client.request({"op": "shutdown"})["type"] == "ok"
        handle._thread.join(timeout=10.0)
        assert not handle._thread.is_alive()
        assert not os.path.exists(sock_path) or True  # socket may linger
        with pytest.raises((ConnectionRefusedError, FileNotFoundError,
                            ConnectionResetError, BrokenPipeError)):
            probe = ServiceClient(socket_path=sock_path, timeout=2.0)
            probe.request({"op": "status"})
            probe.close()
    finally:
        handle.stop()


def test_tcp_endpoint(sock_path):
    """The optional TCP listener speaks the same protocol; port 0
    binds a free port, discoverable from the handle."""
    config = ServiceConfig(tcp=("127.0.0.1", 0),
                           pool=PoolConfig(workers=1, executor="thread"))
    with start_in_thread(config) as handle:
        endpoint = next(e for e in handle.endpoints
                        if e.startswith("tcp:"))
        _, host, port = endpoint.split(":")
        with ServiceClient(tcp=(host, int(port))) as client:
            response = client.request({"op": "scenario",
                                       "scenario": "bounded_buys"})
    assert response["type"] == "decision"
    assert response["decision"]["verdict"] == {"bounded": True, "depth": 2}


def test_served_records_match_serial_sessions(sock_path):
    """No chaos, no tricks: a served decision is byte-for-byte the
    record a serial Session produces for the same question."""
    with _serve(sock_path):
        with ServiceClient(socket_path=sock_path) as client:
            responses = client.request_many(
                [{"op": "scenario", "scenario": name, "id": name}
                 for name in INNOCENTS])
    for response in responses:
        name = response["id"]
        assert response["type"] == "decision"
        assert _stable_view(response["decision"]) == \
            _stable_view(_serial_record(name))
        record = response["decision"]  # meta flattens into the record
        assert (record["op"], record["engine"], record["kernel"]) == \
            ("scenario", "columnar", "bitset")


# ----------------------------------------------------------------------
# The served-decision result cache.
# ----------------------------------------------------------------------

def test_result_cache_replays_without_pool_dispatch(sock_path):
    """A repeat of an already-served request is answered from the
    result cache: bit-identical record, ``cached: true``, and neither
    an admission slot nor a pool dispatch is consumed."""
    with _serve(sock_path, result_cache=32):
        with ServiceClient(socket_path=sock_path) as client:
            first = client.request({"op": "scenario",
                                    "scenario": "bounded_buys"})
            before = client.request({"op": "status"})["status"]
            second = client.request({"op": "scenario",
                                     "scenario": "bounded_buys"})
            after = client.request({"op": "status"})["status"]

    assert first["type"] == second["type"] == "decision"
    assert first["cached"] is False
    assert second["cached"] is True
    assert second["coalesced"] is False
    assert second["decision"] == first["decision"]  # byte-for-byte replay
    # The hit bypassed every inner layer.
    assert after["pool"]["submitted"] == before["pool"]["submitted"]
    assert after["admission"]["admitted"] == before["admission"]["admitted"]
    assert after["coalescer"]["computed"] == before["coalescer"]["computed"]
    cache = after["result_cache"]
    assert (cache["hits"], cache["size"]) == (1, 1)
    assert cache["misses"] == 1  # the first request's lookup


def test_result_cache_distinguishes_configs(sock_path):
    """The cache key is the full coalescing key, so the same scenario
    under a different kernel config is a miss, not a poisoned hit."""
    with _serve(sock_path, result_cache=32):
        with ServiceClient(socket_path=sock_path) as client:
            bitset = client.request({"op": "scenario",
                                     "scenario": "bounded_buys",
                                     "kernel": "bitset"})
            frozen = client.request({"op": "scenario",
                                     "scenario": "bounded_buys",
                                     "kernel": "frozenset"})
            status = client.request({"op": "status"})["status"]
    assert bitset["cached"] is False and frozen["cached"] is False
    assert status["result_cache"]["hits"] == 0
    assert status["result_cache"]["size"] == 2
    assert bitset["decision"]["verdict"] == frozen["decision"]["verdict"]
    assert bitset["decision"]["fingerprint"] != \
        frozen["decision"]["fingerprint"]


def test_result_cache_never_stores_failures(sock_path):
    """Errors are not answers: a quarantined request leaves the cache
    empty, and its repeat re-executes (and re-fails) on the pool."""
    with _serve(sock_path, result_cache=32, max_attempts=2,
                chaos="crash:scenario=bounded_buys,attempt=*"):
        with ServiceClient(socket_path=sock_path) as client:
            first = client.request({"op": "scenario",
                                    "scenario": "bounded_buys"})
            second = client.request({"op": "scenario",
                                     "scenario": "bounded_buys"})
            status = client.request({"op": "status"})["status"]
    assert first["type"] == second["type"] == "error"
    assert status["result_cache"]["size"] == 0
    assert status["result_cache"]["hits"] == 0
    assert status["pool"]["submitted"] == 2  # both really dispatched


def test_result_cache_disabled_by_default(sock_path):
    """Without ``--result-cache`` the server behaves exactly as
    before: repeats recompute, nothing is marked cached, and the
    status payload shows a zero-capacity cache."""
    with _serve(sock_path):
        with ServiceClient(socket_path=sock_path) as client:
            responses = [client.request({"op": "scenario",
                                         "scenario": "bounded_buys"})
                         for _ in range(2)]
            status = client.request({"op": "status"})["status"]
    assert [r["cached"] for r in responses] == [False, False]
    assert status["result_cache"]["capacity"] == 0
    assert status["result_cache"]["hits"] == 0
    assert status["pool"]["submitted"] == 2


# ----------------------------------------------------------------------
# Snapshot-restored workers.
# ----------------------------------------------------------------------

def test_respawned_worker_restores_snapshot(sock_path, tmp_path):
    """A worker pointed at a warm-state snapshot serves its first
    request with measurably fewer Session cache misses than a
    cold-started worker -- the counter-delta proof that restore
    happened, independent of wall clocks -- and the decision record
    stays bit-identical."""
    from repro.snapshot import save_snapshot, set_snapshot_dir

    writer = Session(engine=ENGINE_CONFIGS["columnar"],
                     kernel=KERNEL_CONFIGS["bitset"], cache="private",
                     name="snapshot-writer")
    assert writer.run_scenario("bounded_buys").ok
    assert save_snapshot(writer, tmp_path) is not None

    def first_request_misses(sock, **extra):
        with _serve(sock, **extra):
            with ServiceClient(socket_path=sock) as client:
                before = client.request({"op": "status"})["status"]
                response = client.request({"op": "scenario",
                                           "scenario": "bounded_buys"})
                after = client.request({"op": "status"})["status"]
        assert response["type"] == "decision"
        return _scope_misses(after) - _scope_misses(before), response

    try:
        cold_misses, cold = first_request_misses(
            str(tmp_path / "cold.sock"))
        warm_misses, warm = first_request_misses(
            str(tmp_path / "warm.sock"), snapshot_dir=str(tmp_path))
    finally:
        # _thread_init installs the directory process-wide (that is
        # how spawned process workers inherit it); undo for the rest
        # of the test run.
        set_snapshot_dir(None)

    assert cold_misses > 0
    assert warm_misses < cold_misses, (warm_misses, cold_misses)
    assert _stable_view(warm["decision"]) == _stable_view(cold["decision"])
