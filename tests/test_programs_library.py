"""Tests for the paper-programs library (Examples 1.1, 2.5, 6.1-6.6)."""

import pytest

from repro.datalog.analysis import is_linear, is_nonrecursive, is_recursive
from repro.datalog.database import Database
from repro.datalog.engine import query
from repro.programs import (
    buys_bounded,
    buys_recursive,
    chain_program,
    dist,
    dist_le,
    equal,
    nonlinear_reach,
    plain_transitive_closure,
    same_generation,
    transitive_closure,
    word,
)


def path_db(length: int, labels=None) -> Database:
    db = Database()
    for i in range(length):
        db.add("e", (f"v{i}", f"v{i+1}"))
    for i, label in enumerate(labels or []):
        db.add("one" if label else "zero", (f"v{i}",))
    return db


class TestShapes:
    def test_classifications(self):
        assert is_recursive(transitive_closure()) and is_linear(transitive_closure())
        assert is_recursive(buys_bounded()) and is_linear(buys_bounded())
        assert is_recursive(nonlinear_reach()) and not is_linear(nonlinear_reach())
        assert is_recursive(same_generation()) and is_linear(same_generation())
        for n in (1, 3):
            assert is_nonrecursive(dist(n))
            assert is_nonrecursive(dist_le(n))
            assert is_nonrecursive(equal(n))
            assert is_nonrecursive(word(n))

    def test_chain_program_width(self):
        program = chain_program(3)
        assert len(program.rules[0].body) == 4  # 3 guards + recursive call


class TestSemantics:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_dist_exact_powers(self, n):
        length = 2 ** n + 2
        db = path_db(length)
        rows = {(a.value, b.value) for a, b in query(dist(n), db, f"dist{n}")}
        expected = {
            (f"v{i}", f"v{i + 2 ** n}") for i in range(length - 2 ** n + 1)
        }
        assert rows == expected

    @pytest.mark.parametrize("n", [1, 2])
    def test_dist_le_at_most(self, n):
        length = 2 ** n + 2
        db = path_db(length)
        rows = {(a.value, b.value) for a, b in query(dist_le(n), db, f"dist{n}")}
        expected = {
            (f"v{i}", f"v{j}")
            for i in range(length + 1)
            for j in range(i, min(i + 2 ** n, length) + 1)
        }
        assert rows == expected

    def test_equal_matches_labels(self):
        db = path_db(4, labels=[1, 0, 1, 0])
        rows = {
            tuple(c.value for c in row)
            for row in query(equal(1), db, "equal1")
        }
        # Each path of length 2 pairs with itself...
        assert ("v0", "v2", "v0", "v2") in rows
        # ...and with the label-matching shifted copy (labels 1,0 at
        # v0,v1 and v2,v3).
        assert ("v0", "v2", "v2", "v4") in rows

    def test_word_recognizes_labeled_paths(self):
        # word_i labels the first node and then each target node.
        db = path_db(3, labels=[1, 0, 1, 0])
        rows = {(a.value, b.value) for a, b in query(word(3), db, "word3")}
        assert ("v0", "v3") in rows

    def test_tc_variants_agree_on_edges(self):
        db = path_db(4)
        for a, b in list(db.relation("e")):
            db.add("e0", (a, b))
        plain = query(plain_transitive_closure(), db, "p")
        with_base = query(transitive_closure(), db, "p")
        assert plain == with_base

    def test_buys_programs(self):
        db = Database.from_facts(
            [
                ("likes", ("ann", "hats")),
                ("trendy", ("bob",)),
                ("knows", ("cat", "ann")),
            ]
        )
        bounded = {(a.value, b.value) for a, b in query(buys_bounded(), db, "buys")}
        recursive = {(a.value, b.value) for a, b in query(buys_recursive(), db, "buys")}
        assert ("bob", "hats") in bounded      # trendy bob buys what anyone likes
        assert ("cat", "hats") in recursive    # cat knows ann who likes hats
        assert ("cat", "hats") not in bounded
