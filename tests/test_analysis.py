"""Dependence-graph analysis tests (Section 2.1 definitions)."""

import pytest

from repro.datalog.analysis import (
    dependence_graph,
    is_linear,
    is_nonrecursive,
    is_recursive,
    max_idb_body_atoms,
    reachable_predicates,
    recursive_body_atoms,
    recursive_predicates,
    slice_for_goal,
    strongly_connected_components,
    topological_order,
)
from repro.datalog.errors import NotNonrecursiveError
from repro.datalog.parser import parse_program
from repro.programs import dist, transitive_closure, word


class TestDependenceGraph:
    def test_edges(self):
        program = transitive_closure()
        graph = dependence_graph(program)
        assert graph["p"] == {"e", "p", "e0"}
        assert graph["e"] == frozenset()

    def test_recursive_detection(self):
        assert is_recursive(transitive_closure())
        assert not is_recursive(dist(3))
        assert is_nonrecursive(dist(3))

    def test_mutual_recursion_detected(self):
        program = parse_program(
            """
            a(X) :- b(X).
            b(X) :- a(X).
            a(X) :- base(X).
            """
        )
        assert is_recursive(program)
        assert recursive_predicates(program) == {"a", "b"}

    def test_self_loop(self):
        program = parse_program("p(X) :- p(X).")
        assert recursive_predicates(program) == {"p"}

    def test_no_false_positive_on_diamond(self):
        program = parse_program(
            """
            top(X) :- left(X), right(X).
            left(X) :- base(X).
            right(X) :- base(X).
            """
        )
        assert is_nonrecursive(program)

    def test_sccs_in_callee_first_order(self):
        program = dist(2)
        components = strongly_connected_components(program)
        order = [next(iter(c)) for c in components]
        assert order.index("e") < order.index("dist0") < order.index("dist2")


class TestLinearity:
    def test_tc_is_linear(self):
        assert is_linear(transitive_closure())

    def test_nonlinear(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, Z), p(Z, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        assert not is_linear(program)

    def test_nonrecursive_is_linear(self):
        assert is_linear(dist(2))
        assert is_linear(word(3))

    def test_nonrecursive_idb_subgoal_does_not_break_linearity(self):
        # 'aux' is IDB but not recursive, so two aux subgoals are fine.
        program = parse_program(
            """
            p(X, Y) :- aux(X, Z), aux(Z, W), p(W, Y).
            p(X, Y) :- e(X, Y).
            aux(X, Y) :- f(X, Y).
            """
        )
        assert is_linear(program)

    def test_recursive_body_atoms(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Z), p(Z, Y), q(Z).
            q(X) :- g(X).
            p(X, Y) :- e0(X, Y).
            """
        )
        assert recursive_body_atoms(program, program.rules[0]) == (1,)


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        program = dist(3)
        order = topological_order(program)
        assert order.index("dist0") < order.index("dist1") < order.index("dist3")

    def test_rejects_recursive(self):
        with pytest.raises(NotNonrecursiveError):
            topological_order(transitive_closure())


class TestSlicing:
    def test_slice_keeps_reachable_rules(self):
        program = parse_program(
            """
            goal(X) :- mid(X).
            mid(X) :- base(X).
            unrelated(X) :- other(X).
            """
        )
        sliced = slice_for_goal(program, "goal")
        assert sliced.idb_predicates == {"goal", "mid"}

    def test_reachable_predicates(self):
        program = dist(2)
        assert "e" in reachable_predicates(program, "dist2")
        assert "dist0" in reachable_predicates(program, "dist2")

    def test_max_idb_body_atoms(self):
        assert max_idb_body_atoms(transitive_closure()) == 1
        assert max_idb_body_atoms(dist(2)) == 2


class TestBodyOnlyPredicateHardening:
    """Every helper must handle predicates that appear only in rule
    bodies (EDB) or only in heads -- the seams PR 10 hardened."""

    PROGRAM = parse_program(
        """
        goal(X) :- mid(X), extra(X, X).
        mid(X) :- base(X).
        island(X) :- sea(X).
        """
    )

    def test_dependence_graph_covers_body_only_nodes(self):
        graph = dependence_graph(self.PROGRAM)
        # Head predicates map to their body predicates; body-only
        # predicates are reachable as values (never KeyError).
        assert graph["goal"] == {"mid", "extra"}
        assert graph["mid"] == {"base"}
        for body_only in ("base", "extra", "sea"):
            assert graph.get(body_only, frozenset()) == frozenset()

    def test_sccs_include_edb_only_components(self):
        components = strongly_connected_components(self.PROGRAM)
        flattened = set().union(*components)
        assert {"goal", "mid", "base", "extra", "island", "sea"} \
            <= flattened

    def test_topological_order_skips_edb_components(self):
        order = topological_order(self.PROGRAM)
        assert set(order) == {"goal", "mid", "island"}
        assert order.index("mid") < order.index("goal")

    def test_recursive_body_atoms_on_nonrecursive_head(self):
        # The head is not part of any recursive component: no indices.
        rule = self.PROGRAM.rules[0]
        assert recursive_body_atoms(self.PROGRAM, rule) == ()

    def test_recursive_body_atoms_foreign_rule(self):
        # A rule whose head the program has never seen must yield ()
        # rather than raising (the former None-component latent bug).
        foreign = parse_program("ghost(X) :- ghost(X).").rules[0]
        assert recursive_body_atoms(self.PROGRAM, foreign) == ()

    def test_recursive_predicates_ignore_body_only(self):
        assert recursive_predicates(self.PROGRAM) == frozenset()
        assert not is_recursive(self.PROGRAM)
        assert is_nonrecursive(self.PROGRAM)

    def test_reachable_predicates_includes_edb_frontier(self):
        assert reachable_predicates(self.PROGRAM, "goal") \
            == {"goal", "mid", "base", "extra"}

    def test_slice_for_goal_drops_unreachable_island(self):
        sliced = slice_for_goal(self.PROGRAM, "goal")
        assert sliced.idb_predicates == {"goal", "mid"}
        assert "island" not in sliced.predicates

    def test_slice_for_edb_goal_raises_typed_error(self):
        # Slicing on a body-only predicate is a typed ValidationError
        # (the analyzer reports E002 before ever slicing).
        from repro.datalog.errors import ValidationError

        with pytest.raises(ValidationError):
            slice_for_goal(self.PROGRAM, "base")

    def test_is_linear_and_max_idb_body_atoms(self):
        assert is_linear(self.PROGRAM)
        assert max_idb_body_atoms(self.PROGRAM) == 1
