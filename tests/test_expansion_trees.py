"""Expansion-tree tests (Section 2.3, Figure 1, Proposition 2.6)."""

import random

import pytest

from repro.cq.canonical import evaluate_cq
from repro.datalog.engine import query
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rules import Rule
from repro.trees.expansion import ExpansionTree, expansion_queries, unfolding_trees
from repro.trees.render import render_figure, render_tree

from .conftest import random_graph_database


class TestStructure:
    def test_node_requires_matching_head(self, tc_program):
        rule = parse_rule("p(X, Y) :- e0(X, Y).")
        with pytest.raises(ValidationError):
            ExpansionTree(parse_rule("p(A, B) :- e0(A, B).").head, rule)

    def test_validate_accepts_generated_trees(self, tc_program):
        for tree in unfolding_trees(tc_program, "p", 3):
            tree.validate(tc_program)

    def test_validate_rejects_non_instance(self, tc_program):
        bogus = parse_rule("p(X, Y) :- weird(X, Y).")
        tree = ExpansionTree(bogus.head, bogus)
        with pytest.raises(ValidationError):
            tree.validate(tc_program)

    def test_validate_rejects_wrong_children(self, tc_program):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        leaf_rule = parse_rule("p(A, B) :- e0(A, B).")
        leaf = ExpansionTree(leaf_rule.head, leaf_rule)
        tree = ExpansionTree(rule.head, rule, (leaf,))  # child atom mismatch
        with pytest.raises(ValidationError):
            tree.validate(tc_program)

    def test_height_and_size(self, tc_program):
        trees = {t.height(): t for t in unfolding_trees(tc_program, "p", 3)}
        assert set(trees) == {1, 2, 3}
        assert trees[3].size() == 3

    def test_query_of_tree(self, tc_program):
        tree = next(t for t in unfolding_trees(tc_program, "p", 2) if t.height() == 2)
        q = tree.to_query(tc_program)
        predicates = [a.predicate for a in q.body]
        assert predicates == ["e", "e0"]
        assert q.head.predicate == "p"


class TestFreshness:
    def test_unfolding_uses_fresh_variables(self, tc_program):
        # Definition 2.4 (b): body variables not in the node's atom are
        # new -- the e-atoms of a deep chain all use distinct middles.
        deep = next(t for t in unfolding_trees(tc_program, "p", 4) if t.height() == 4)
        q = deep.to_query(tc_program)
        middles = [a.args[1] for a in q.body if a.predicate == "e"]
        assert len(set(middles)) == len(middles)

    def test_repeated_head_variable_rule(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, Z), q(Z, Y).
            q(W, W) :- loop(W).
            """
        )
        trees = list(unfolding_trees(program, "p", 2))
        full = [t for t in trees if t.height() == 2]
        assert len(full) == 1
        q = full[0].to_query(program)
        # Unifying q(Z, Y) with q(W, W) forces Z = Y in the whole tree.
        e_atom = next(a for a in q.body if a.predicate == "e")
        loop_atom = next(a for a in q.body if a.predicate == "loop")
        assert e_atom.args[1] == loop_atom.args[0]


class TestSemantics:
    def test_proposition_2_6(self, tc_program):
        # union of expansion-tree queries == engine fixpoint (heights
        # large enough for the database diameter).
        rng = random.Random(2)
        for _ in range(5):
            db = random_graph_database(rng, nodes=4)
            for a, b in list(db.relation("e"))[:2]:
                db.add("e0", (a, b))
            union_rows = set()
            for q in expansion_queries(tc_program, "p", 6):
                union_rows |= evaluate_cq(q, db)
            assert union_rows == query(tc_program, db, "p")


class TestRendering:
    def test_figure1_layout(self, tc_program):
        trees = sorted(unfolding_trees(tc_program, "p", 2), key=lambda t: t.height())
        text = render_figure(
            trees[1], trees[0], "(a) expansion tree", "(b) base tree"
        )
        assert "(a) expansion tree" in text and "(b) base tree" in text
        assert "p(X0, X1)" in text

    def test_render_contains_rule_bodies(self, tc_program):
        tree = next(t for t in unfolding_trees(tc_program, "p", 2) if t.height() == 2)
        text = render_tree(tree)
        assert "<-" in text and "e0(" in text

    def test_render_goals_only(self, tc_program):
        tree = next(iter(unfolding_trees(tc_program, "p", 1)))
        assert "<-" not in render_tree(tree, show_rules=False)
