"""Tests for the Theorem 5.11 substrate cross-check and the
alternating-machine encoding."""

import pytest

from repro.core.materialize import materialize_cq_automaton, theorem_5_11_via_substrate
from repro.core.tree_containment import datalog_contained_in_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.analysis import is_linear, is_recursive
from repro.datalog.parser import parse_atom
from repro.lowerbounds.encoding_space import encode_alternating
from repro.lowerbounds.turing import RIGHT, STAY, AlternatingTuringMachine


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


class TestTheorem511Substrate:
    """The specialized profile fixpoint must agree with the literal
    tree-automata containment of Theorem 5.11."""

    @pytest.mark.parametrize(
        "disjuncts",
        [
            [("p(X0, X1)", ("e0(X0, X1)",))],
            [("p(X0, X1)", ("e0(X0, X1)",)), ("p(X0, X1)", ("e(X0, Z)",))],
            [("p(X0, X0)", ("e0(X0, X0)",))],
            [("p(X0, X1)", ("e(X0, Z)", "e0(Z, X1)"))],
        ],
    )
    def test_agreement(self, tc_program, disjuncts):
        union = UnionOfConjunctiveQueries(
            [cq(h, *b) for h, b in disjuncts], arity=2
        )
        substrate = theorem_5_11_via_substrate(tc_program, "p", union)
        specialized = datalog_contained_in_ucq(tc_program, "p", union).contained
        assert substrate == specialized

    def test_materialized_automaton_runs(self, tc_program):
        theta = cq("p(X0, X1)", "e0(X0, X1)")
        automaton = materialize_cq_automaton(tc_program, "p", theta)
        states, transitions = automaton.size()
        assert states > 0 and transitions > 0
        # It accepts some proof tree (the base-rule trees).
        assert not automaton.is_empty()


def tiny_alternating(universal: bool) -> AlternatingTuringMachine:
    return AlternatingTuringMachine(
        states=frozenset({"q0", "qa", "qr"}),
        tape_symbols=frozenset({"b", "1"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset({"qa"}),
        universal_states=frozenset({"q0"}) if universal else frozenset(),
        left_transitions={("q0", "b"): ("qa", "1", STAY)},
        right_transitions={("q0", "b"): ("qa", "b", RIGHT)},
    )


class TestAlternatingEncoding:
    def test_universal_rule_makes_program_nonlinear(self):
        enc = encode_alternating(tiny_alternating(universal=True), 2)
        assert is_recursive(enc.program)
        assert not is_linear(enc.program)

    def test_existential_only_machine_stays_linear(self):
        enc = encode_alternating(tiny_alternating(universal=False), 2)
        assert is_linear(enc.program)

    def test_error_families(self):
        enc = encode_alternating(tiny_alternating(universal=True), 2)
        assert "universal_mistagged" in enc.query_families
        assert "existential_mistagged" in enc.query_families
        assert "transition_left_successor" in enc.query_families
        assert enc.union.arity == 0

    def test_sizes_grow_with_n(self):
        machine = tiny_alternating(universal=True)
        sizes = [encode_alternating(machine, n).sizes() for n in (1, 2, 3)]
        assert sizes[0]["program_rules"] < sizes[1]["program_rules"]
        assert sizes[1]["program_rules"] < sizes[2]["program_rules"]

    def test_arity_bounded(self):
        # Bit: 7 arguments, A: 10 -- bounded arity, as the "real
        # intractability" discussion requires.
        enc = encode_alternating(tiny_alternating(universal=True), 3)
        for predicate, arity in enc.program.arity.items():
            assert arity <= 10

    def test_expansions_exist(self):
        from repro.trees.expansion import unfolding_trees

        enc = encode_alternating(tiny_alternating(universal=True), 1)
        trees = []
        for tree in unfolding_trees(enc.program, "c", 4):
            trees.append(tree)
            if len(trees) >= 2:
                break
        assert trees
