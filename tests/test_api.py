"""Public-API surface tests: exports resolve, __all__ is consistent,
and every public item is documented."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.automata",
    "repro.cq",
    "repro.core",
    "repro.datalog",
    "repro.lowerbounds",
    "repro.programs",
    "repro.resilience",
    "repro.runner",
    "repro.trees",
    "repro.workloads",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert getattr(module, "__all__", None), f"{name} lacks __all__"
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.__all__ lists missing {entry!r}"


@pytest.mark.parametrize("name", MODULES)
def test_all_is_sorted_and_unique(name):
    module = importlib.import_module(name)
    entries = list(getattr(module, "__all__", []))
    assert entries == sorted(set(entries)), f"{name}.__all__ unsorted/duplicated"


@pytest.mark.parametrize("name", MODULES)
def test_submodules_have_docstrings(name):
    """Every .py file under the listed packages carries a module
    docstring (the docstring-audit backstop)."""
    import pkgutil

    package = importlib.import_module(name)
    if not hasattr(package, "__path__"):
        return
    for info in pkgutil.iter_modules(package.__path__):
        sub = importlib.import_module(f"{name}.{info.name}")
        assert sub.__doc__, f"{name}.{info.name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for entry in getattr(module, "__all__", []):
        item = getattr(module, entry)
        if inspect.isfunction(item) or inspect.isclass(item):
            assert item.__doc__, f"{name}.{entry} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__


def test_quickstart_docstring_runs():
    """The usage example in the package docstring must be executable."""
    from repro import is_equivalent_to_nonrecursive, parse_program

    recursive = parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), buys(Z, Y).
        """
    )
    nonrecursive = parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), likes(Z, Y).
        """
    )
    assert is_equivalent_to_nonrecursive(recursive, nonrecursive, goal="buys")
