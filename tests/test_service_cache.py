"""Unit tests for the served-decision result cache
(:mod:`repro.service.cache`).

The behavioural half -- hits bypassing admission and the pool, the
``cached: true`` wire mark, failure non-caching -- lives in
``tests/test_service.py`` against a live server; this file pins the
data-structure contract: strict LRU order, capacity bounds, TTL
expiry under an injected clock, and the counter arithmetic the
``status`` op reports.
"""

import pytest

from repro.service.cache import ResultCache


def _record(n):
    return {"verdict": {"bounded": True, "depth": n}, "ok": True}


def test_disabled_cache_is_inert():
    cache = ResultCache(capacity=0)
    assert not cache.enabled
    cache.put("k", _record(1))
    assert cache.get("k") is None
    stats = cache.stats()
    assert stats["size"] == stats["hits"] == stats["misses"] == 0
    assert stats["capacity"] == 0


def test_hit_returns_record_and_attempts():
    cache = ResultCache(capacity=4)
    cache.put("k", _record(1), attempts=3)
    assert cache.get("k") == (_record(1), 3)
    stats = cache.stats()
    assert (stats["hits"], stats["misses"], stats["size"]) == (1, 0, 1)
    assert stats["hit_rate"] == 1.0


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", _record(1))
    cache.put("b", _record(2))
    assert cache.get("a") is not None   # refresh a: b is now LRU
    cache.put("c", _record(3))          # evicts b
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert cache.stats()["evictions"] == 1


def test_put_overwrite_refreshes_not_evicts():
    cache = ResultCache(capacity=2)
    cache.put("a", _record(1))
    cache.put("b", _record(2))
    cache.put("a", _record(9))          # overwrite, no eviction
    assert cache.stats()["evictions"] == 0
    assert cache.get("a") == (_record(9), 1)


def test_ttl_expiry_with_injected_clock():
    now = [0.0]
    cache = ResultCache(capacity=4, ttl_s=10.0, clock=lambda: now[0])
    cache.put("k", _record(1))
    now[0] = 9.9
    assert cache.get("k") is not None   # still fresh
    now[0] = 10.1
    assert cache.get("k") is None       # expired: dropped + miss
    stats = cache.stats()
    assert stats["expirations"] == 1
    assert stats["size"] == 0
    assert (stats["hits"], stats["misses"]) == (1, 1)


def test_ttl_must_be_positive():
    with pytest.raises(ValueError):
        ResultCache(capacity=4, ttl_s=0)


def test_clear_drops_entries_keeps_counters():
    cache = ResultCache(capacity=4)
    cache.put("k", _record(1))
    assert cache.get("k") is not None
    cache.clear()
    assert cache.get("k") is None
    stats = cache.stats()
    assert stats["size"] == 0
    assert (stats["hits"], stats["misses"]) == (1, 1)


def test_hit_rate_rounding():
    cache = ResultCache(capacity=4)
    cache.put("k", _record(1))
    cache.get("k")
    cache.get("absent")
    cache.get("absent")
    assert cache.stats()["hit_rate"] == pytest.approx(0.3333, abs=1e-4)
