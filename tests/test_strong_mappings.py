"""Strong-containment-mapping oracle tests (Definition 5.4,
Propositions 5.5/5.6, Corollary 5.7, Theorem 5.8)."""

import pytest

from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.cq.containment import cq_contained_in
from repro.datalog.errors import ValidationError
from repro.datalog.parser import parse_atom
from repro.trees.proof import proof_tree_to_expansion_tree, proof_trees
from repro.trees.strong import (
    brute_force_contained,
    find_strong_containment_mapping,
    has_strong_containment_mapping,
    ucq_covers_proof_tree,
)


def cq(head: str, *body: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(parse_atom(head), tuple(parse_atom(b) for b in body))


class TestStrongMappings:
    def test_rejects_idb_query(self, tc_program):
        tree = next(iter(proof_trees(tc_program, "p", 1)))
        with pytest.raises(ValidationError):
            has_strong_containment_mapping(cq("p(X, Y)", "p(X, Y)"), tree, tc_program)

    def test_base_query_maps_to_base_trees(self, tc_program):
        theta = cq("p(X0, X1)", "e0(X0, X1)")
        for tree in proof_trees(tc_program, "p", 1):
            assert has_strong_containment_mapping(theta, tree, tc_program)

    def test_connectedness_blocks_bogus_mappings(self, tc_program):
        """The heart of Definition 5.4: in the Figure 2 proof tree the
        reused X must NOT let a query join across disconnected
        occurrences."""
        from repro.datalog.atoms import Atom
        from repro.datalog.rules import Rule
        from repro.datalog.terms import Variable
        from repro.trees.expansion import ExpansionTree

        pv = [Variable(f"_pv{i}") for i in range(3)]
        x, y, z = pv
        root = Rule(Atom("p", (x, y)), (Atom("e", (x, z)), Atom("p", (z, y))))
        interior = Rule(Atom("p", (z, y)), (Atom("e", (z, x)), Atom("p", (x, y))))
        leaf = Rule(Atom("p", (x, y)), (Atom("e0", (x, y)),))
        tree = ExpansionTree(
            root.head, root,
            (ExpansionTree(interior.head, interior,
                           (ExpansionTree(leaf.head, leaf),)),),
        )
        # Naive (weak) homomorphism would map W -> X across both e
        # atoms AND make W distinguished: e(W, Z), e0(W, X1) with W=X0.
        # e(X0, Z) maps to root's e(x, z); e0(X0, X1) needs e0(x, y) --
        # but the leaf's x-occurrence is NOT connected to the root's,
        # so the strong mapping must fail.
        theta = cq("p(X0, X1)", "e(X0, Z)", "e0(X0, X1)")
        assert not has_strong_containment_mapping(theta, tree, tc_program)
        # The weak homomorphism DOES exist on the flattened query --
        # showing why plain containment mappings to proof trees are
        # unsound and connectedness is needed.
        flat = tree.to_query(tc_program)
        assert cq_contained_in(flat, theta)
        # On the correctly-renamed expansion tree even the weak mapping
        # dies.
        renamed = proof_tree_to_expansion_tree(tree).to_query(tc_program)
        assert not cq_contained_in(renamed, theta)

    def test_mapping_object_structure(self, tc_program):
        theta = cq("p(X0, X1)", "e0(X0, X1)")
        tree = next(iter(proof_trees(tc_program, "p", 1)))
        mapping = find_strong_containment_mapping(theta, tree, tc_program)
        assert mapping is not None
        assert set(mapping) == {parse_atom("p(X0, X1)").args[0],
                                parse_atom("p(X0, X1)").args[1]}

    def test_corollary_5_7_equivalence_with_renamed_trees(self, tc_program):
        """Strong mapping to proof tree == weak mapping to the renamed
        expansion tree (the two sides of Propositions 5.5/5.6)."""
        queries = [
            cq("p(X0, X1)", "e0(X0, X1)"),
            cq("p(X0, X1)", "e(X0, Z)", "e0(Z, X1)"),
            cq("p(X0, X1)", "e(X0, Z)"),
            cq("p(X0, X1)", "e(Z, Z)"),
        ]
        for tree in list(proof_trees(tc_program, "p", 2))[:60]:
            renamed = proof_tree_to_expansion_tree(tree).to_query(tc_program)
            for theta in queries:
                strong = has_strong_containment_mapping(theta, tree, tc_program)
                weak_on_renamed = cq_contained_in(renamed, theta)
                assert strong == weak_on_renamed, (theta, str(tree))


class TestBruteForce:
    def test_covers_detects_failure(self, tc_program):
        union = UnionOfConjunctiveQueries([cq("p(X0, X1)", "e0(X0, X1)")])
        ok, witness = brute_force_contained(tc_program, "p", union, max_height=2)
        assert not ok
        assert witness is not None
        assert not ucq_covers_proof_tree(union, witness, tc_program)

    def test_covers_detects_success(self, tc_program):
        union = UnionOfConjunctiveQueries(
            [cq("p(X0, X1)", "e0(X0, X1)"), cq("p(X0, X1)", "e(X0, Z)")]
        )
        ok, witness = brute_force_contained(tc_program, "p", union, max_height=2)
        assert ok and witness is None
