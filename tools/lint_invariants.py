#!/usr/bin/env python
"""The codebase invariant linter: AST checks for the repo's own rules.

Four invariants, each with a stable code:

* **L001 deadline-free fixpoint loop** -- a ``while`` loop whose
  condition mentions a fixpoint/worklist name (``frontier``,
  ``changed``, ``delta``, ``work``, ...) must call
  ``check_deadline()`` somewhere in its body.  These loops are where
  the EXPTIME-hard decision procedures spend unbounded time; a loop
  the cooperative deadline tier cannot interrupt silently defeats
  ``time_budget`` (see ``src/repro/budget.py``).
* **L002 unregistered lru_cache** -- every ``functools.lru_cache``
  must have its ``cache_clear`` registered via
  ``register_shared_cache`` in the same module, or warm-state
  snapshot restore and the test-isolation fixtures cannot reset it
  (see ``src/repro/automata/kernel.py``).
* **L003 bare except** -- ``except:`` swallows ``KeyboardInterrupt``
  and the deadline alarm's exception; catch something.
* **L004 unsorted __all__** -- module-level ``__all__`` literals must
  be ASCII-sorted so export diffs stay reviewable.

Escape hatches, both explicit and diff-visible:

* inline: append ``# lint: allow(L001)`` to the flagged line;
* the committed allowlist (``tools/lint_allowlist.txt``): lines of
  ``{code} {relpath}::{qualname}`` grandfathering existing
  violations.  Stale entries fail the run, so the allowlist can only
  shrink.

Usage::

    python tools/lint_invariants.py [--root src] [--allowlist FILE] [paths...]

Exits 1 on any non-allowlisted violation (or stale allowlist entry),
0 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: Condition names that mark a ``while`` loop as a fixpoint/worklist
#: loop (L001).  Deliberately narrow: plain traversal stacks/queues
#: (``stack``, ``queue``, ``mask``) terminate in one pass over a
#: finite structure and are exempt.
FIXPOINT_NAMES = frozenset({
    "agenda", "changed", "changed_ref", "delta", "frontier",
    "pending", "work", "worklist",
})

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(\s*([A-Z0-9,\s]+?)\s*\)")


class Violation:
    """One finding: ``code`` at ``path:line``, keyed for the allowlist
    by ``{code} {relpath}::{qualname}``."""

    def __init__(self, code: str, path: str, line: int, qualname: str,
                 message: str):
        self.code = code
        self.path = path
        self.line = line
        self.qualname = qualname
        self.message = message

    @property
    def key(self) -> str:
        return f"{self.code} {self.path}::{self.qualname}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.code} {self.message}"
                f" [{self.path}::{self.qualname}]")


def _inline_allows(source_lines: List[str], line: int) -> Set[str]:
    """Codes allowed by a ``# lint: allow(...)`` comment on *line*."""
    if not 1 <= line <= len(source_lines):
        return set()
    match = _ALLOW_RE.search(source_lines[line - 1])
    if not match:
        return set()
    return {code.strip() for code in match.group(1).split(",")
            if code.strip()}


def _is_check_deadline_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "check_deadline"
    return isinstance(func, ast.Attribute) and func.attr == "check_deadline"


def _decorator_is_lru_cache(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "lru_cache"
    return isinstance(target, ast.Attribute) and target.attr == "lru_cache"


def _registered_cache_names(tree: ast.Module) -> Set[str]:
    """Function names whose ``.cache_clear`` is passed to a
    ``register_shared_cache(...)`` call anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if callee != "register_shared_cache":
            continue
        for arg in node.args:
            if (isinstance(arg, ast.Attribute)
                    and arg.attr == "cache_clear"
                    and isinstance(arg.value, ast.Name)):
                names.add(arg.value.id)
    return names


def _sorted_all_violation(node: ast.Assign) -> Optional[str]:
    """The L004 message for a module-level ``__all__`` literal, or
    None when the invariant holds (or is not statically checkable)."""
    if len(node.targets) != 1:
        return None
    target = node.targets[0]
    if not (isinstance(target, ast.Name) and target.id == "__all__"):
        return None
    if not isinstance(node.value, (ast.List, ast.Tuple)):
        return None
    names: List[str] = []
    for element in node.value.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None  # computed entry: not statically checkable
        names.append(element.value)
    if names != sorted(names):
        first = next(a for a, b in zip(names, sorted(names)) if a != b)
        return (f"__all__ is not sorted (first out-of-order entry: "
                f"{first!r})")
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: List[str],
                 registered_caches: Set[str]):
        self.path = path
        self.source_lines = source_lines
        self.registered_caches = registered_caches
        self.scope: List[str] = []
        self.violations: List[Violation] = []

    @property
    def qualname(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def _report(self, code: str, line: int, message: str,
                qualname: Optional[str] = None) -> None:
        if code in _inline_allows(self.source_lines, line):
            return
        self.violations.append(Violation(
            code, self.path, line, qualname or self.qualname, message))

    # -- scope tracking ------------------------------------------------

    def _visit_scoped(self, node, name: str) -> None:
        self.scope.append(name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_lru_cache(node)
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_lru_cache(node)
        self._visit_scoped(node, node.name)

    # -- L001: deadline-free fixpoint loops ----------------------------

    def visit_While(self, node: ast.While) -> None:
        condition_names = {n.id for n in ast.walk(node.test)
                           if isinstance(n, ast.Name)}
        hot = sorted(condition_names & FIXPOINT_NAMES)
        if hot and not any(_is_check_deadline_call(n)
                           for n in ast.walk(node)):
            self._report(
                "L001", node.lineno,
                f"fixpoint loop over {', '.join(hot)} never calls "
                f"check_deadline(); the cooperative deadline tier "
                f"cannot interrupt it")
        self.generic_visit(node)

    # -- L002: unregistered lru_cache ----------------------------------

    def _check_lru_cache(self, node) -> None:
        for decorator in node.decorator_list:
            if _decorator_is_lru_cache(decorator) \
                    and node.name not in self.registered_caches:
                self._report(
                    "L002", decorator.lineno,
                    f"lru_cache on {node.name!r} is not registered via "
                    f"register_shared_cache({node.name}.cache_clear); "
                    f"snapshot restore cannot reset it",
                    qualname=self.qualname + "." + node.name
                    if self.scope else node.name)

    # -- L003: bare except ---------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report("L003", node.lineno,
                         "bare 'except:' swallows KeyboardInterrupt "
                         "and the deadline alarm")
        self.generic_visit(node)

    # -- L004: unsorted __all__ ----------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.scope:
            message = _sorted_all_violation(node)
            if message:
                self._report("L004", node.lineno, message,
                             qualname="__all__")
        self.generic_visit(node)


def lint_source(source: str, path: str) -> List[Violation]:
    """All violations in *source* (reported under *path*)."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source.splitlines(),
                     _registered_cache_names(tree))
    linter.visit(tree)
    return sorted(linter.violations, key=lambda v: (v.line, v.code))


def lint_paths(paths: List[Path], root: Path) -> List[Violation]:
    """Lint every ``.py`` file under *paths*, reporting repo-relative
    POSIX paths (stable allowlist keys across machines)."""
    violations: List[Violation] = []
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for file in files:
        try:
            relative = file.resolve().relative_to(root.resolve())
            label = relative.as_posix()
        except ValueError:
            label = file.as_posix()
        violations.extend(lint_source(file.read_text(), label))
    return violations


def load_allowlist(path: Path) -> Set[str]:
    """Allowlist keys from *path* (blank lines and ``#`` comments
    skipped)."""
    if not path.is_file():
        return set()
    keys: Set[str] = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def apply_allowlist(violations: List[Violation], allowed: Set[str],
                    ) -> Tuple[List[Violation], Set[str]]:
    """``(remaining, stale)``: violations not covered by *allowed*,
    and allowlist entries that matched nothing (must be deleted)."""
    used: Set[str] = set()
    remaining: List[Violation] = []
    for violation in violations:
        if violation.key in allowed:
            used.add(violation.key)
        else:
            remaining.append(violation)
    return remaining, allowed - used


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="lint the repo's codebase invariants")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root for relative allowlist keys")
    parser.add_argument("--allowlist", type=Path,
                        default=Path(__file__).resolve().parent
                        / "lint_allowlist.txt")
    args = parser.parse_args(argv)

    paths = args.paths or [args.root / "src"]
    violations = lint_paths(paths, args.root)
    remaining, stale = apply_allowlist(violations,
                                       load_allowlist(args.allowlist))

    for violation in remaining:
        print(violation.render())
    for key in sorted(stale):
        print(f"stale allowlist entry (nothing matches; delete it): {key}")
    if remaining or stale:
        print(f"{len(remaining)} violation(s), {len(stale)} stale "
              f"allowlist entr(ies)")
        return 1
    allowed = len(violations) - len(remaining)
    print(f"invariants clean ({allowed} grandfathered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
