"""Section 6 succinctness, measured: nonrecursive programs can be
exponentially smaller than any equivalent union of conjunctive queries.

* Example 6.1 (dist_n): a program of O(n) rules whose unfolding is a
  single conjunctive query with 2^n atoms.
* Example 6.6 (word_n): a *linear* nonrecursive program whose unfolding
  has 2^n disjuncts -- but each of size only O(n) (the fact Theorem 6.7
  exploits to shave an exponential off the equivalence test).
* Example 6.2 (dist<=): the <=-variant with the paper's empty-body
  rules.

Run:  python examples/succinctness_demo.py
"""

from repro.datalog.unfold import unfold_nonrecursive
from repro.programs import dist, dist_le, word


def table(title, rows, header):
    print(title)
    print(f"  {header[0]:>3} {header[1]:>14} {header[2]:>14} {header[3]:>16}")
    for row in rows:
        print(f"  {row[0]:>3} {row[1]:>14} {row[2]:>14} {row[3]:>16}")
    print()


def main() -> None:
    rows = []
    for n in range(1, 7):
        program = dist(n)
        union = unfold_nonrecursive(program, f"dist{n}")
        rows.append(
            (n, program.size(), len(union), max(len(q.body) for q in union))
        )
    table("Example 6.1: dist_n (paths of length exactly 2^n)", rows,
          ("n", "program size", "disjuncts", "largest CQ body"))

    rows = []
    for n in range(1, 7):
        program = word(n)
        union = unfold_nonrecursive(program, f"word{n}")
        rows.append(
            (n, program.size(), len(union), max(len(q.body) for q in union))
        )
    table("Example 6.6: word_n (labeled paths; linear nonrecursive)", rows,
          ("n", "program size", "disjuncts", "largest CQ body"))

    rows = []
    for n in range(1, 5):
        program = dist_le(n)
        union = unfold_nonrecursive(program, f"dist{n}")
        rows.append(
            (n, program.size(), len(union), max(len(q.body) for q in union))
        )
    table("Example 6.2: dist<=_n (paths of length at most 2^n)", rows,
          ("n", "program size", "disjuncts", "largest CQ body"))

    print("Shape check (paper): dist_n -> 1 disjunct of 2^n atoms;")
    print("                     word_n -> 2^n disjuncts of O(n) atoms.")


if __name__ == "__main__":
    main()
