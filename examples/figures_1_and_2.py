"""Reproduce Figures 1 and 2 of the paper: expansion trees, unfolding
expansion trees, and proof trees for the transitive-closure program of
Example 2.5.

Run:  python examples/figures_1_and_2.py
"""

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.programs import transitive_closure
from repro.trees.expansion import ExpansionTree, unfolding_trees
from repro.trees.proof import OccurrenceClasses, proof_tree_to_expansion_tree
from repro.trees.render import render_figure, render_tree


def figure_1():
    """Expansion tree vs unfolding expansion tree (variable reuse)."""
    program = transitive_closure()
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")

    # Figure 1(a): an expansion tree reusing X in the child.
    root_rule = Rule(Atom("p", (x, y)), (Atom("e", (x, z)), Atom("p", (z, y))))
    child_rule = Rule(Atom("p", (z, y)), (Atom("e0", (z, x)),))
    reusing = ExpansionTree(
        root_rule.head, root_rule,
        (ExpansionTree(child_rule.head, child_rule),),
    )

    # Figure 1(b): the unfolding expansion tree uses a fresh W instead.
    unfolding = next(
        t for t in unfolding_trees(program, "p", 2) if t.height() == 2
    )
    print(render_figure(reusing, unfolding,
                        "(a) expansion tree", "(b) unfolding expansion tree"))


def figure_2():
    """Unfolding expansion tree vs proof tree (Figure 2, Example 5.1).

    The proof tree reuses X (a variable of var(Pi)) where the unfolding
    tree takes a fresh W; connectedness (Definition 5.2) recovers the
    distinction.
    """
    program = transitive_closure()
    pv = [Variable(f"_pv{i}") for i in range(3)]
    x, y, z = pv[0], pv[1], pv[2]

    root = Rule(Atom("p", (x, y)), (Atom("e", (x, z)), Atom("p", (z, y))))
    interior = Rule(Atom("p", (z, y)), (Atom("e", (z, x)), Atom("p", (x, y))))
    leaf = Rule(Atom("p", (x, y)), (Atom("e0", (x, y)),))
    proof_tree = ExpansionTree(
        root.head, root,
        (ExpansionTree(interior.head, interior,
                       (ExpansionTree(leaf.head, leaf),)),),
    )
    unfolding = next(
        t for t in unfolding_trees(program, "p", 3) if t.height() == 3
    )
    print(render_figure(unfolding, proof_tree,
                        "(a) unfolding expansion tree", "(b) proof tree"))

    print("\nExample 5.3 -- connectedness in the proof tree:")
    classes = OccurrenceClasses(proof_tree)
    print("  root Y ~ interior Y:", classes.connected(((), y), ((0,), y)))
    print("  root X ~ leaf X:   ", classes.connected(((), x), ((0, 0), x)))
    print("  leaf X distinguished:", classes.is_distinguished((0, 0), x))
    print("  root X distinguished:", classes.is_distinguished((), x))

    print("\nProposition 5.5 renaming (proof tree -> expansion tree):")
    print(render_tree(proof_tree_to_expansion_tree(proof_tree)))


if __name__ == "__main__":
    print("=" * 72)
    print("Figure 1")
    print("=" * 72)
    figure_1()
    print()
    print("=" * 72)
    print("Figure 2")
    print("=" * 72)
    figure_2()
