"""Quickstart: decide whether a recursive Datalog program is equivalent
to a nonrecursive one (the paper's Example 1.1) -- through the Session
API: one configured entry point, one uniform ``Decision`` result.

Run:  python examples/quickstart.py
      (the same decision from the shell: see ``python -m repro decide``)
"""

from repro import Session, parse_program
from repro.core import counterexample_database
from repro.datalog.engine import evaluate
from repro.trees.render import render_tree

# Pi_1: whether someone buys something spreads through trendiness.
PI1 = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
    """
)

# The candidate nonrecursive rewriting from the paper.
PI1_REWRITE = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
    """
)

# Pi_2: knowledge chains -- inherently recursive.
PI2 = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
    """
)

PI2_REWRITE = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), likes(Z, Y).
    """
)


def report(decision) -> None:
    verdict = decision.verdict
    print(f"  equivalent: {verdict['equivalent']}")
    print(f"  forward  (Pi in rewrite): {verdict['forward']}")
    print(f"  backward (rewrite in Pi): {verdict['backward']}")
    print(f"  timings: {decision.timings}  fingerprint: {decision.fingerprint}")


def main() -> None:
    print("=" * 64)
    print("Example 1.1 (Chaudhuri & Vardi 1992)")
    print("=" * 64)

    # A Session owns its engine/kernel configuration and its caches;
    # every decision procedure is a method returning a Decision.
    session = Session(name="quickstart")

    print("\nPi_1 vs its nonrecursive rewriting:")
    decision1 = session.equivalent_to_nonrecursive(PI1, PI1_REWRITE, goal="buys")
    assert bool(decision1)
    report(decision1)

    print("\nPi_2 vs its nonrecursive rewriting:")
    decision2 = session.equivalent_to_nonrecursive(PI2, PI2_REWRITE, goal="buys")
    assert not decision2
    report(decision2)

    # The Decision carries the paper's certificate: a proof tree of
    # Pi_2 that the rewriting misses.
    print("\nA proof tree of Pi_2 that the rewriting misses:")
    print(render_tree(decision2.certificate))

    # The witness converts into a concrete refuting database.
    database, row = counterexample_database(decision2, PI2)
    print("\nCounterexample database (canonical instance of the witness):")
    for atom in sorted(str(a) for a in database.atoms()):
        print("  ", atom)
    derived = evaluate(PI2, database).facts("buys")
    print("\nPi_2 derives", tuple(c.value for c in row), "on it:", row in derived)
    print("(the rewriting cannot: its two disjuncts need a likes-edge "
          "within two knows-steps)")


if __name__ == "__main__":
    main()
