"""Quickstart: decide whether a recursive Datalog program is equivalent
to a nonrecursive one (the paper's Example 1.1).

Run:  python examples/quickstart.py
"""

from repro import parse_program
from repro.core import counterexample_database, is_equivalent_to_nonrecursive
from repro.core.tree_containment import ContainmentResult
from repro.datalog.engine import evaluate
from repro.trees.render import render_tree

# Pi_1: whether someone buys something spreads through trendiness.
PI1 = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
    """
)

# The candidate nonrecursive rewriting from the paper.
PI1_REWRITE = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
    """
)

# Pi_2: knowledge chains -- inherently recursive.
PI2 = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
    """
)

PI2_REWRITE = parse_program(
    """
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), likes(Z, Y).
    """
)


def main() -> None:
    print("=" * 64)
    print("Example 1.1 (Chaudhuri & Vardi 1992)")
    print("=" * 64)

    result1 = is_equivalent_to_nonrecursive(PI1, PI1_REWRITE, goal="buys")
    print("\nPi_1 equivalent to its nonrecursive rewriting:", result1.equivalent)
    print("  forward  (Pi_1 in rewrite):", result1.forward_holds)
    print("  backward (rewrite in Pi_1):", result1.backward_holds)

    result2 = is_equivalent_to_nonrecursive(PI2, PI2_REWRITE, goal="buys")
    print("\nPi_2 equivalent to its nonrecursive rewriting:", result2.equivalent)
    print("  forward  (Pi_2 in rewrite):", result2.forward_holds)
    print("  backward (rewrite in Pi_2):", result2.backward_holds)

    print("\nA proof tree of Pi_2 that the rewriting misses:")
    print(render_tree(result2.forward_witness))

    # The witness converts into a concrete refuting database.
    containment = ContainmentResult(False, result2.forward_witness)
    database, row = counterexample_database(containment, PI2)
    print("\nCounterexample database (canonical instance of the witness):")
    for atom in sorted(str(a) for a in database.atoms()):
        print("  ", atom)
    derived = evaluate(PI2, database).facts("buys")
    print("\nPi_2 derives", tuple(c.value for c in row), "on it:", row in derived)
    print("(the rewriting cannot: its two disjuncts need a likes-edge "
          "within two knows-steps)")


if __name__ == "__main__":
    main()
