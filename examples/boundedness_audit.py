"""A query-optimizer scenario: audit a library of recursive views and
replace every one that admits a nonrecursive rewriting.

Boundedness is undecidable in general [GMSV93], but the paper's
decidable containment test gives a semi-decision: a program is bounded
at depth k iff it is equivalent to the union of its depth-k expansions
(Section 2.1 + Theorem 5.12).  Certified views are rewritten; the rest
are left recursive.

Run:  python examples/boundedness_audit.py
"""

from repro import Session
from repro.datalog.parser import parse_program
from repro.programs import (
    buys_bounded,
    buys_recursive,
    same_generation,
    transitive_closure,
    widget_certified,
)

VIEWS = {
    "buys_trendy (Example 1.1 Pi_1)": (buys_bounded(), "buys"),
    "buys_knows (Example 1.1 Pi_2)": (buys_recursive(), "buys"),
    "transitive_closure (Example 2.5)": (transitive_closure(), "p"),
    "same_generation": (same_generation(), "sg"),
    "certified_supplier": (widget_certified(), "ok"),
    "blanket_approval": (
        parse_program(
            """
            approve(X) :- signed(X).
            approve(X) :- board_override(W), approve(Y).
            """
        ),
        "approve",
    ),
}


def main() -> None:
    # One session audits the whole library: its caches amortize the
    # shared automata across views, and every verdict carries the same
    # config fingerprint.
    session = Session(name="audit")
    print(f"{'view':40} {'verdict':22} rewriting")
    print("-" * 100)
    for name, (program, goal) in VIEWS.items():
        decision = session.bounded(program, goal, max_depth=3)
        if decision:
            verdict = f"bounded (depth {decision.verdict['depth']})"
            rewriting = " | ".join(
                str(q) for q in decision.certificate
            )
        else:
            verdict = "no certificate <=3"
            rewriting = "(kept recursive)"
        print(f"{name:40} {verdict:22} {rewriting}")


if __name__ == "__main__":
    main()
