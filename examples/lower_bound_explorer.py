"""Explore the lower-bound constructions of Sections 5.3 and 6.

Builds the containment instances for a tiny sweeping Turing machine,
reports how the instance sizes scale with n, decodes a program
expansion back into its bit trace, and validates the Section 6
nonrecursive checker against encoded computation traces.

Run:  python examples/lower_bound_explorer.py
"""

from repro import Session
from repro.lowerbounds import (
    decode_expansion,
    encode_deterministic,
    encode_nonrecursive,
    sweeping_machine,
    trace_database,
)
from repro.trees.expansion import unfolding_trees


def main() -> None:
    machine = sweeping_machine()
    print("Machine accepts empty tape (space 4):", machine.accepts_in_space(4))

    print("\nSection 5.3 instance growth (containment in a UCQ):")
    print(f"  {'n':>2} {'Pi rules':>9} {'Pi size':>8} {'UCQ disjuncts':>14} {'UCQ size':>9}")
    for n in (1, 2, 3):
        enc = encode_deterministic(machine, n, include_transition_errors=(n <= 2))
        s = enc.sizes()
        print(f"  {n:>2} {s['program_rules']:>9} {s['program_size']:>8} "
              f"{s['union_disjuncts']:>14} {s['union_size']:>9}")

    enc = encode_deterministic(machine, 2)
    print("\nError-query families (n = 2):")
    for family, count in sorted(enc.query_families.items()):
        print(f"  {family:24} {count:>5}")

    print("\nOne expansion of the generated program, decoded:")
    tree = next(iter(unfolding_trees(enc.program, "c", 6)))
    for step in decode_expansion(tree, 2):
        print(f"  bit level {step.level}: addr={step.address_bit} "
              f"carry={step.carry_bit} symbol={step.symbol} "
              f"config_break={step.config_break}")

    print("\nSection 6 instance growth (containment in a nonrecursive program):")
    print(f"  {'n':>2} {'Pi rules':>9} {'Pi_prime rules':>15} {'Pi_prime size':>14}")
    for n in (1, 2, 3):
        enc6 = encode_nonrecursive(machine, n, include_transition_errors=(n == 1))
        s = enc6.sizes()
        print(f"  {n:>2} {s['program_rules']:>9} {s['nonrecursive_rules']:>15} "
              f"{s['nonrecursive_size']:>14}")

    print("\nSemantic validation of the Section 6 checker (n = 1):")
    session = Session(name="lower-bounds")
    enc6 = encode_nonrecursive(machine, 1)
    trace = machine.run_configurations(4)
    legal = trace_database(machine, trace, 1)
    corrupted = trace_database(machine, trace, 1, corrupt_counter_at=2)
    print("  Pi' flags legal trace:    ",
          bool(session.query(enc6.nonrecursive, legal, "c").raw),
          "(want False)")
    print("  Pi' flags corrupted trace:",
          bool(session.query(enc6.nonrecursive, corrupted, "c").raw),
          "(want True)")
    print("  Pi accepts legal trace:   ",
          bool(session.query(enc6.program, legal, "c").raw), "(want True)")


if __name__ == "__main__":
    main()
