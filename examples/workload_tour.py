"""Workload tour: generated scenario families and the batch runner.

Walks the scenario axis added on top of the decision procedures:

1. seed-deterministic program families with ground truth known by
   construction (bounded vs unbounded, covered sirups);
2. the scenario registry that names every workload;
3. a mini batch through ``repro.runner`` -- the same machinery behind
   ``python -m repro.runner``.

Run:  PYTHONPATH=src python examples/workload_tour.py
"""

from repro import Session
from repro.datalog import program_to_source
from repro.runner import build_jobs, run_batch, verdicts
from repro.workloads import (
    bounded_program,
    bounded_unbounded_pairs,
    get_scenario,
    run_scenario,
    scenario_names,
    sirup,
)

# ----------------------------------------------------------------------
# 1. Generated families: same seed, same program, known verdict.
# ----------------------------------------------------------------------

print("== a generated sirup (seed 7) ==")
print(program_to_source(sirup(2, seed=7)))
assert program_to_source(sirup(2, seed=7)) == program_to_source(sirup(2, seed=7))

print("== a generated bounded program (2 guards, seed 3) ==")
session = Session(name="tour")
program = bounded_program(2, seed=3)
print(program_to_source(program))
certificate = session.bounded(program, "p", max_depth=3)
print(f"bounded: {certificate.verdict['bounded']}, "
      f"certificate depth: {certificate.verdict['depth']}")
assert certificate and certificate.verdict["depth"] == 2

print("== a labeled bounded/unbounded stream (seed 21) ==")
for candidate, goal, is_bounded in bounded_unbounded_pairs(4, seed=21):
    decision = session.bounded(candidate, goal, max_depth=3)
    verdict = "bounded" if decision else "no certificate"
    print(f"  label={'bounded' if is_bounded else 'unbounded':9s} -> {verdict}")
    assert bool(decision) == is_bounded

# ----------------------------------------------------------------------
# 2. The registry: named, self-checking scenarios.
# ----------------------------------------------------------------------

print(f"\n== registry: {len(scenario_names())} scenarios ==")
for name in scenario_names(kind="boundedness"):
    scenario = get_scenario(name)
    print(f"  {name:24s} {scenario.description}")

result = session.run_scenario("equiv_buys_bounded")
print(f"equiv_buys_bounded -> {result['verdict']} (ground truth ok: {result['ok']})")
assert result["ok"]
# run_scenario (the free function) returns the same Decision shape:
assert run_scenario(get_scenario("equiv_buys_bounded"))["verdict"] == result["verdict"]

# ----------------------------------------------------------------------
# 3. A mini batch through the runner (serial here; -m repro.runner
#    shards the same jobs across worker processes).
# ----------------------------------------------------------------------

print("\n== mini batch: 3 scenarios x 2 kernels ==")
jobs = build_jobs(["bounded_buys", "contain_tc_trunc2", "unbounded_tc"],
                  kernels=("bitset", "frozenset"))
records = run_batch(jobs, workers=1)
for record in records:
    print(f"  {record['scenario']:20s} {record['kernel']:10s} "
          f"{record['seconds']*1000:7.1f}ms  {record['verdict']}")
assert all(record["ok"] for record in records)
assert len(verdicts(records)) == 6
print("all verdicts match ground truth")
