"""Workload tour: generated scenario families and the batch runner.

Walks the scenario axis added on top of the decision procedures:

1. seed-deterministic program families with ground truth known by
   construction (bounded vs unbounded, covered sirups);
2. the scenario registry that names every workload;
3. a mini batch through ``repro.runner`` -- the same machinery behind
   ``python -m repro.runner``.

Run:  PYTHONPATH=src python examples/workload_tour.py
"""

from repro.core import decide_boundedness
from repro.datalog import program_to_source
from repro.runner import build_jobs, run_batch, verdicts
from repro.workloads import (
    bounded_program,
    bounded_unbounded_pairs,
    get_scenario,
    run_scenario,
    scenario_names,
    sirup,
)

# ----------------------------------------------------------------------
# 1. Generated families: same seed, same program, known verdict.
# ----------------------------------------------------------------------

print("== a generated sirup (seed 7) ==")
print(program_to_source(sirup(2, seed=7)))
assert program_to_source(sirup(2, seed=7)) == program_to_source(sirup(2, seed=7))

print("== a generated bounded program (2 guards, seed 3) ==")
program = bounded_program(2, seed=3)
print(program_to_source(program))
certificate = decide_boundedness(program, "p", max_depth=3)
print(f"bounded: {certificate.bounded}, certificate depth: {certificate.depth}")
assert certificate.bounded and certificate.depth == 2

print("== a labeled bounded/unbounded stream (seed 21) ==")
for candidate, goal, is_bounded in bounded_unbounded_pairs(4, seed=21):
    result = decide_boundedness(candidate, goal, max_depth=3)
    verdict = "bounded" if result.bounded else "no certificate"
    print(f"  label={'bounded' if is_bounded else 'unbounded':9s} -> {verdict}")
    assert bool(result.bounded) == is_bounded

# ----------------------------------------------------------------------
# 2. The registry: named, self-checking scenarios.
# ----------------------------------------------------------------------

print(f"\n== registry: {len(scenario_names())} scenarios ==")
for name in scenario_names(kind="boundedness"):
    scenario = get_scenario(name)
    print(f"  {name:24s} {scenario.description}")

result = run_scenario(get_scenario("equiv_buys_bounded"))
print(f"equiv_buys_bounded -> {result['verdict']} (ground truth ok: {result['ok']})")
assert result["ok"]

# ----------------------------------------------------------------------
# 3. A mini batch through the runner (serial here; -m repro.runner
#    shards the same jobs across worker processes).
# ----------------------------------------------------------------------

print("\n== mini batch: 3 scenarios x 2 kernels ==")
jobs = build_jobs(["bounded_buys", "contain_tc_trunc2", "unbounded_tc"],
                  kernels=("bitset", "frozenset"))
records = run_batch(jobs, workers=1)
for record in records:
    print(f"  {record['scenario']:20s} {record['kernel']:10s} "
          f"{record['seconds']*1000:7.1f}ms  {record['verdict']}")
assert all(record["ok"] for record in records)
assert len(verdicts(records)) == 6
print("all verdicts match ground truth")
